"""Measurement sources: the ingestion seam between sessions and the world.

A :class:`MeasurementSource` is where a
:class:`~repro.sim.session.LocalizerSession` gets each time step's raw
measurement batch.  The session no longer cares whether those batches
come from the in-process simulator (:class:`SimulatorSource`), a recorded
stream file (:class:`FileReplaySource`), or a socket feed
(:class:`SocketReplaySource`) -- every downstream stage (fault injection,
transport, localization, metrics) is identical across all three.

Two cross-cutting concerns live *on* the source rather than in the
session, because they belong to ingestion:

* **fault injection** -- the session attaches its
  :class:`~repro.faults.schedule.FaultInjector` to ``source.injector``;
  :meth:`MeasurementSource.measure` applies it after the raw read, so
  canned streams can be faulted exactly like live simulations;
* **recording** -- attaching a
  :class:`~repro.streams.recorder.Recorder` to ``source.recorder`` tees
  the **raw pre-fault** batches to a stream file.  Recording pre-fault
  is what makes replay bitwise: the injector's RNG derives from
  ``(schedule.seed, run_seed)``, so replaying the raw stream under the
  same header scenario re-applies identical faults, while replaying it
  under a different schedule injects *new* faults over the same data.

Checkpointing goes through :meth:`export_cursor` /
:meth:`load_cursor`: the simulator cursor is its RNG bit-state plus the
global sequence counter (byte-compatible with the pre-source checkpoint
layout), and a file-replay cursor is the stream's identity (id + SHA-256)
plus the next batch index, so a replayed session resumes mid-stream
bitwise in a fresh process.
"""

from __future__ import annotations

import socket
import time
from abc import ABC, abstractmethod
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional

import numpy as np

from repro.sensors.measurement import Measurement
from repro.sensors.network import SensorNetwork
from repro.sim.rng import export_rng_state
from repro.streams.format import (
    StreamBatch,
    StreamFormatError,
    StreamHeader,
    StreamTransportError,
    load_stream,
    parse_batch_line,
    parse_header_line,
)


class WallClockPacer:
    """Paces replay to the stream's embedded timestamps.

    ``speed`` scales playback (2.0 = twice real time).  The first
    :meth:`wait` call anchors the stream clock to the wall clock, so a
    replay started at any point (including mid-stream after a resume)
    paces relative to its own start.  ``clock``/``sleep`` are injectable
    for tests.
    """

    def __init__(
        self,
        speed: float = 1.0,
        clock: Callable[[], float] = time.monotonic,
        sleep: Callable[[float], None] = time.sleep,
    ):
        if speed <= 0:
            raise ValueError(f"pacer speed must be > 0, got {speed}")
        self.speed = speed
        self._clock = clock
        self._sleep = sleep
        self._anchor: Optional[float] = None
        self._anchor_ts: Optional[float] = None

    def wait(self, timestamp: float) -> None:
        """Block until the wall clock reaches ``timestamp`` (stream time)."""
        now = self._clock()
        if self._anchor is None:
            self._anchor = now
            self._anchor_ts = timestamp
            return
        target = self._anchor + (timestamp - self._anchor_ts) / self.speed
        delay = target - now
        if delay > 0:
            self._sleep(delay)


class MeasurementSource(ABC):
    """Where a session's raw measurement batches come from.

    Subclasses implement :meth:`read`; the session calls :meth:`measure`,
    which layers recording and fault injection around the raw read.
    """

    #: Source family tag, surfaced in manifests and cursors.
    kind: str = "abstract"

    def __init__(self) -> None:
        #: Fault injector applied to every batch after the raw read
        #: (attached by the session; None = fault-free).
        self.injector = None
        #: Recorder teeing raw batches to a stream file (None = off).
        self.recorder = None

    @abstractmethod
    def read(self, time_step: int) -> List[Measurement]:
        """The raw measurement batch for ``time_step`` (pre-fault)."""

    def measure(self, time_step: int) -> List[Measurement]:
        """One ingested batch: raw read -> record tee -> fault injection."""
        batch = self.read(time_step)
        if self.recorder is not None:
            self.recorder.record(time_step, batch)
        if self.injector is not None:
            batch = self.injector.apply(time_step, batch)
        return batch

    @property
    def n_time_steps(self) -> Optional[int]:
        """Batches this source can supply (None = unbounded)."""
        return None

    def export_cursor(self) -> Dict[str, Any]:
        """JSON-safe resume point (raises if the source cannot checkpoint)."""
        raise StreamFormatError(
            f"{type(self).__name__} does not support checkpointing"
        )

    def load_cursor(self, cursor: Dict[str, Any]) -> None:
        """Restore a cursor produced by :meth:`export_cursor`."""
        raise StreamFormatError(
            f"{type(self).__name__} does not support checkpointing"
        )

    def describe(self) -> Dict[str, Any]:
        """Manifest-ready identity of this source."""
        return {"kind": self.kind}

    def close(self) -> None:
        """Release any underlying handle (file, socket)."""


class SimulatorSource(MeasurementSource):
    """The in-process simulator behind the source interface.

    Wraps :meth:`repro.sensors.network.SensorNetwork.measure_time_step`
    bitwise-identically: construction performs exactly the work the
    session used to do inline (build the network from the scenario's
    ground truth; no RNG draws), and each read is one Poisson batch from
    the shared measurement generator.
    """

    kind = "simulator"

    def __init__(self, scenario, rng: np.random.Generator):
        super().__init__()
        self.rng = rng
        self.network = SensorNetwork(
            scenario.sensors,
            scenario.field_with_obstacles(),
            rng,
        )

    def read(self, time_step: int) -> List[Measurement]:
        return self.network.measure_time_step(time_step)

    def export_cursor(self) -> Dict[str, Any]:
        # Byte-compatible with the pre-source checkpoint layout
        # (state["network"]), so old checkpoints restore unchanged.
        return {
            "sequence": self.network._sequence,
            "measurement_rng": export_rng_state(self.rng),
        }

    def load_cursor(self, cursor: Dict[str, Any]) -> None:
        self.rng.bit_generator.state = cursor["measurement_rng"]
        self.network._sequence = int(cursor["sequence"])


class FileReplaySource(MeasurementSource):
    """Replays a ``repro-stream v1`` file batch-by-batch.

    The whole file is parsed eagerly (stream files are per-run sized) and
    its SHA-256 pinned, so cursors and manifests identify the exact bytes
    consumed.  Each read validates that the requested time step matches
    the stream's, making any session/stream drift a loud
    :class:`StreamFormatError` instead of silent misalignment.

    ``allow_partial`` accepts a truncated file (a crashed recording):
    :attr:`n_time_steps` then reflects the batches actually present.
    """

    kind = "file-replay"

    def __init__(
        self,
        path,
        pacer: Optional[WallClockPacer] = None,
        allow_partial: bool = False,
    ):
        super().__init__()
        self.path = Path(path)
        self.pacer = pacer
        header, batches, sha256 = load_stream(self.path)
        if len(batches) != header.n_time_steps and not allow_partial:
            raise StreamFormatError(
                f"stream {self.path} has {len(batches)} batches but its "
                f"header promises {header.n_time_steps}; pass "
                f"allow_partial=True to replay a truncated recording"
            )
        self.header = header
        self.batches = batches
        self.sha256 = sha256
        self._index = 0

    @property
    def n_time_steps(self) -> Optional[int]:
        return len(self.batches)

    def read(self, time_step: int) -> List[Measurement]:
        if self._index >= len(self.batches):
            raise StreamFormatError(
                f"stream {self.header.stream_id!r} exhausted after "
                f"{len(self.batches)} batches (asked for step {time_step})"
            )
        batch = self.batches[self._index]
        if batch.time_step != time_step:
            raise StreamFormatError(
                f"stream {self.header.stream_id!r} is at time step "
                f"{batch.time_step} but the session asked for {time_step}"
            )
        if self.pacer is not None:
            self.pacer.wait(batch.timestamp)
        self._index += 1
        return list(batch.measurements)

    def export_cursor(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "path": str(self.path),
            "stream_id": self.header.stream_id,
            "sha256": self.sha256,
            "index": self._index,
        }

    def load_cursor(self, cursor: Dict[str, Any]) -> None:
        if cursor.get("sha256") != self.sha256:
            raise StreamFormatError(
                f"checkpoint cursor pins stream sha256 "
                f"{str(cursor.get('sha256'))[:12]}... but {self.path} has "
                f"{self.sha256[:12]}...; resuming against different bytes "
                f"would break bitwise replay"
            )
        index = int(cursor["index"])
        if not 0 <= index <= len(self.batches):
            raise StreamFormatError(
                f"cursor index {index} outside stream of "
                f"{len(self.batches)} batches"
            )
        self._index = index

    @classmethod
    def from_cursor(
        cls,
        cursor: Dict[str, Any],
        path=None,
        pacer: Optional[WallClockPacer] = None,
    ) -> "FileReplaySource":
        """Reopen the stream a checkpoint cursor points at, mid-stream.

        ``path`` overrides the recorded location (the file may have moved
        between processes/hosts); the SHA-256 pin still guarantees the
        bytes are the ones the checkpointed session was consuming.
        """
        source = cls(path if path is not None else cursor["path"], pacer=pacer)
        source.load_cursor(cursor)
        return source

    def describe(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "stream_id": self.header.stream_id,
            "stream_sha256": self.sha256,
            "path": str(self.path),
        }


class SocketReplaySource(MeasurementSource):
    """Replays a stream fed over a TCP socket, one line at a time.

    The peer writes the same bytes a stream file holds: one header line,
    then one batch line per time step.  Lines are consumed lazily --
    nothing is buffered beyond the current batch -- so this is the live
    ingestion path for real sensor feeds.  Socket sources are not
    checkpointable (there is no seekable identity to pin);
    :meth:`export_cursor` raises.

    **Failure contract**: a dead or stalled peer fails *fast and typed*.
    ``read_timeout`` bounds every blocking read (header and batches), and
    any transport-level failure -- refused dial, timeout, reset,
    mid-line disconnect -- surfaces as :class:`StreamTransportError`
    rather than a hang or a bare ``OSError``, so callers (the serve
    front-end especially) can shed or fail over on a bounded clock.
    """

    kind = "socket-replay"

    #: Default bound on any single blocking socket read.
    DEFAULT_READ_TIMEOUT = 30.0

    def __init__(
        self,
        sock: socket.socket,
        pacer: Optional[WallClockPacer] = None,
        read_timeout: Optional[float] = DEFAULT_READ_TIMEOUT,
    ):
        super().__init__()
        self.pacer = pacer
        self.read_timeout = read_timeout
        self._socket = sock
        sock.settimeout(read_timeout)
        self._file = sock.makefile("r", encoding="utf-8")
        line = self._read_line("header")
        if not line.strip():
            raise StreamFormatError("socket stream closed before the header")
        self.header: StreamHeader = parse_header_line(line)

    @classmethod
    def connect(
        cls,
        host: str,
        port: int,
        pacer: Optional[WallClockPacer] = None,
        timeout: Optional[float] = 30.0,
        read_timeout: Optional[float] = DEFAULT_READ_TIMEOUT,
    ) -> "SocketReplaySource":
        """Dial a stream server and read its header.

        ``timeout`` bounds the dial; ``read_timeout`` bounds every later
        read.  A refused/unreachable peer raises
        :class:`StreamTransportError` instead of a bare ``OSError``.
        """
        try:
            sock = socket.create_connection((host, port), timeout=timeout)
        except OSError as exc:
            raise StreamTransportError(
                f"cannot connect to stream server {host}:{port}: {exc}"
            ) from exc
        return cls(sock, pacer=pacer, read_timeout=read_timeout)

    def _read_line(self, what: str) -> str:
        """One line from the peer, with timeouts/resets made typed."""
        try:
            return self._file.readline()
        except socket.timeout as exc:
            raise StreamTransportError(
                f"socket stream read timed out after {self.read_timeout}s "
                f"waiting for the {what}; peer is stalled or dead"
            ) from exc
        except OSError as exc:
            raise StreamTransportError(
                f"socket stream transport failed reading the {what}: {exc}"
            ) from exc

    @property
    def n_time_steps(self) -> Optional[int]:
        return self.header.n_time_steps

    def read(self, time_step: int) -> List[Measurement]:
        line = self._read_line(f"batch for time step {time_step}")
        if not line.strip():
            raise StreamFormatError(
                f"socket stream {self.header.stream_id!r} closed at time "
                f"step {time_step}"
            )
        batch: StreamBatch = parse_batch_line(line)
        if batch.time_step != time_step:
            raise StreamFormatError(
                f"socket stream {self.header.stream_id!r} sent time step "
                f"{batch.time_step} but the session asked for {time_step}"
            )
        if self.pacer is not None:
            self.pacer.wait(batch.timestamp)
        return list(batch.measurements)

    def describe(self) -> Dict[str, Any]:
        return {"kind": self.kind, "stream_id": self.header.stream_id}

    def close(self) -> None:
        try:
            self._file.close()
        finally:
            self._socket.close()
