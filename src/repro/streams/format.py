"""The ``repro-stream v1`` on-disk measurement-stream format.

A stream file is line-oriented JSON (JSONL): one header line followed by
one line per time step.  The header carries everything a replayer needs
to rebuild the consuming session -- the full scenario document (sensor
geometry, obstacles, localizer config, delivery model, fault schedule),
the seed the recording ran under, and a canonical config hash -- so a
stream file is self-describing: ``repro replay file.jsonl`` needs no
other input.

Header line::

    {"format": "repro-stream", "format_version": 1, "stream_id": ...,
     "seed": ..., "n_time_steps": ..., "dt_seconds": ...,
     "config_hash": ..., "scenario": {...}, "context": {...}}

Batch line (one per time step, in order)::

    {"t": <int>, "ts": <float seconds>, "measurements": [<measurement>...]}

Measurements use the canonical codec from
:mod:`repro.sensors.measurement` (alphabetical keys, ``repr``-round-trip
floats), and every line is serialized with :func:`canonical_dumps`
(sorted keys, no whitespace), so byte-identical runs produce
byte-identical stream files and a file's SHA-256 is a stable identity
the ledger and checkpoints can pin.

The recorded batches are the **raw generated measurements** -- before
fault injection and before transport reordering.  Replay re-applies the
header scenario's fault schedule and delivery model deterministically
(their RNGs derive from the seed, not from the measurement stream), which
is what makes a replayed run bitwise-identical to the live run while
still letting callers inject *different* faults over the same canned
stream.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple

from repro.sensors.measurement import (
    Measurement,
    measurement_from_dict,
    measurement_to_dict,
)

#: Stream document magic + version (independent of scenario/checkpoint
#: documents; bump on incompatible line-schema changes).
STREAM_FORMAT = "repro-stream"
STREAM_VERSION = 1


class StreamFormatError(RuntimeError):
    """A stream file/line is missing, malformed, or unsupported."""


class StreamTransportError(StreamFormatError):
    """The transport under a stream failed (dead peer, timeout, reset).

    Subclasses :class:`StreamFormatError` so existing handlers that treat
    "the stream broke" as one failure class keep working, while callers
    that care can distinguish a bad *peer* (retryable: reconnect, fail
    over) from bad *bytes* (not retryable: the stream itself is wrong).
    """


def canonical_dumps(value: Any) -> str:
    """Deterministic single-line JSON (sorted keys, no whitespace).

    Floats serialize via ``repr`` -- the shortest representation that
    parses back to the exact same double -- so canonical encoding is
    lossless, and equal documents always produce equal bytes.
    """
    return json.dumps(value, sort_keys=True, separators=(",", ":"))


@dataclass
class StreamHeader:
    """The self-description line at the top of every stream file."""

    #: Stable identity of the stream (ledger trend key, checkpoint pin).
    stream_id: str
    #: The seed the recording ran under; replaying with it reproduces the
    #: live run's transport/filter RNG streams bitwise.
    seed: int
    #: Number of batch lines a complete file contains.
    n_time_steps: int
    #: Wall-clock seconds per time step (drives wall-clock pacing).
    dt_seconds: float
    #: Full scenario document (``scenario_to_dict`` output).
    scenario: Dict[str, Any]
    #: Canonical hash of the scenario document.
    config_hash: str
    #: Free-form recording context (backend, argv, ...).
    context: Dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "format": STREAM_FORMAT,
            "format_version": STREAM_VERSION,
            "stream_id": self.stream_id,
            "seed": int(self.seed),
            "n_time_steps": int(self.n_time_steps),
            "dt_seconds": float(self.dt_seconds),
            "config_hash": self.config_hash,
            "scenario": self.scenario,
            "context": self.context,
        }

    @classmethod
    def from_dict(cls, doc: Dict[str, Any]) -> "StreamHeader":
        if not isinstance(doc, dict) or doc.get("format") != STREAM_FORMAT:
            raise StreamFormatError(
                f"not a {STREAM_FORMAT} header: {str(doc)[:80]!r}"
            )
        version = doc.get("format_version")
        if version != STREAM_VERSION:
            raise StreamFormatError(
                f"stream format version {version!r} is unsupported; this "
                f"build reads {STREAM_FORMAT} v{STREAM_VERSION}"
            )
        try:
            return cls(
                stream_id=str(doc["stream_id"]),
                seed=int(doc["seed"]),
                n_time_steps=int(doc["n_time_steps"]),
                dt_seconds=float(doc["dt_seconds"]),
                scenario=dict(doc["scenario"]),
                config_hash=str(doc["config_hash"]),
                context=dict(doc.get("context", {})),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise StreamFormatError(
                f"stream header is missing/malformed field: {exc}"
            ) from exc


@dataclass
class StreamBatch:
    """One time step's raw measurement batch with its stream timestamp."""

    time_step: int
    #: Seconds since stream start (``time_step * dt_seconds`` for recorded
    #: simulations; real feeds carry whatever their clock said).
    timestamp: float
    measurements: List[Measurement]

    def to_dict(self) -> Dict[str, Any]:
        return {
            "t": int(self.time_step),
            "ts": float(self.timestamp),
            "measurements": [
                measurement_to_dict(m) for m in self.measurements
            ],
        }

    @classmethod
    def from_dict(cls, doc: Dict[str, Any]) -> "StreamBatch":
        try:
            return cls(
                time_step=int(doc["t"]),
                timestamp=float(doc["ts"]),
                measurements=[
                    measurement_from_dict(m) for m in doc["measurements"]
                ],
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise StreamFormatError(
                f"stream batch line is missing/malformed field: {exc}"
            ) from exc


def header_for_scenario(
    scenario,
    seed: int,
    stream_id: Optional[str] = None,
    dt_seconds: float = 1.0,
    context: Optional[Dict[str, Any]] = None,
) -> StreamHeader:
    """Build a stream header describing a recording of ``scenario``.

    The default stream id -- ``<name>-s<seed>-<hash8>`` -- is stable
    across re-recordings of the same configuration, which is what lets
    the ledger treat repeated recordings as one trend series.
    """
    from repro.obs.ledger import config_digest
    from repro.sim.serialization import scenario_to_dict

    doc = scenario_to_dict(scenario)
    config_hash = config_digest(doc)
    if stream_id is None:
        stream_id = f"{scenario.name}-s{seed}-{config_hash[:8]}"
    return StreamHeader(
        stream_id=stream_id,
        seed=int(seed),
        n_time_steps=int(scenario.n_time_steps),
        dt_seconds=float(dt_seconds),
        scenario=doc,
        config_hash=config_hash,
        context=dict(context or {}),
    )


def parse_header_line(line: str) -> StreamHeader:
    """Parse the first line of a stream (raises :class:`StreamFormatError`)."""
    try:
        doc = json.loads(line)
    except json.JSONDecodeError as exc:
        raise StreamFormatError(
            f"stream header is not valid JSON: {exc}"
        ) from exc
    return StreamHeader.from_dict(doc)


def parse_batch_line(line: str) -> StreamBatch:
    """Parse one batch line (raises :class:`StreamFormatError`)."""
    try:
        doc = json.loads(line)
    except json.JSONDecodeError as exc:
        raise StreamFormatError(
            f"stream batch line is not valid JSON: {exc}"
        ) from exc
    if not isinstance(doc, dict):
        raise StreamFormatError(
            f"stream batch line is not an object: {line[:80]!r}"
        )
    return StreamBatch.from_dict(doc)


def load_stream(
    path,
) -> Tuple[StreamHeader, List[StreamBatch], str]:
    """Read a whole stream file: ``(header, batches, sha256)``.

    The SHA-256 is computed over the file's raw bytes -- the same digest
    an incremental :class:`~repro.streams.recorder.Recorder` reports at
    close -- so checkpoints and manifests can pin the exact stream they
    consumed.  Batch lines must be consecutive time steps from 0.
    """
    path = Path(path)
    try:
        raw = path.read_bytes()
    except OSError as exc:
        raise StreamFormatError(f"cannot read stream {path}: {exc}") from exc
    sha256 = hashlib.sha256(raw).hexdigest()
    lines = [line for line in raw.decode("utf-8").splitlines() if line.strip()]
    if not lines:
        raise StreamFormatError(f"stream {path} is empty")
    header = parse_header_line(lines[0])
    batches = [parse_batch_line(line) for line in lines[1:]]
    for expected, batch in enumerate(batches):
        if batch.time_step != expected:
            raise StreamFormatError(
                f"stream {path} batch {expected} carries time_step "
                f"{batch.time_step}; batches must be consecutive from 0"
            )
    return header, batches, sha256
