"""Pluggable array backends for the localizer's hot kernels.

Profiling the Table-1 cell (15000 particles, N = 196) shows the remaining
wall is not numpy itself but *how* the kernels are driven: one Python
round-trip per sensor in the weight path, ragged per-seed gathers and
``np.repeat`` copies in the truncated mean-shift, and a fresh temporary
for every intermediate array.  An :class:`ArrayBackend` owns those four
kernels -- fused Poisson log-likelihood over a whole step's delivered
measurements, disc-query gather, the segmented mean-shift reduction, and
the resampling prefix-sum -- so the driver code (``weighting``,
``resampling``, ``estimator``, ``localizer``) stays backend-agnostic:

* :class:`NumpyBackend` (``"default"``) delegates to the float64
  reference implementations and is **bitwise-identical** to the code it
  replaced -- the existing parity contract is untouched.
* :class:`FastNumpyBackend` (``"fast"``) computes in float32 over
  structure-of-arrays scratch buffers preallocated per step: every O(n)
  temporary on the weight path comes from the :class:`ScratchPool`, so
  steady-state iterations allocate **zero** new buffers (verified by the
  pool's allocation counter, surfaced as the
  ``backend.allocations_per_step`` metric).  Accelerated kernels carry a
  tolerance-based parity suite, not a bitwise one.
* :class:`NumbaBackend` (``"numba"``) JIT-compiles the fused likelihood
  when numba is importable; it is auto-detected at import time and
  requesting it without numba raises :class:`BackendUnavailableError`.

Selection precedence: CLI ``--backend`` (which overwrites the config
field) > ``LocalizerConfig.backend`` > the ``REPRO_BACKEND`` environment
variable > ``"default"``.  See docs/PERFORMANCE.md for the capability
matrix.
"""

from __future__ import annotations

import logging
import os
from typing import TYPE_CHECKING, Dict, Optional, Sequence, Tuple

import numpy as np
from scipy.special import gammaln

from repro.physics.units import CPM_PER_MICROCURIE

if TYPE_CHECKING:
    from repro.core.config import LocalizerConfig
    from repro.core.particles import ParticleSet

logger = logging.getLogger(__name__)

#: Environment variable consulted when the config leaves the backend unset.
BACKEND_ENV = "REPRO_BACKEND"

#: Every selectable backend name, in documentation order.
BACKEND_NAMES: Tuple[str, ...] = ("default", "fast", "numba")

#: Compute dtype per backend (importable without instantiating anything).
BACKEND_DTYPES: Dict[str, str] = {
    "default": "float64",
    "fast": "float32",
    "numba": "float32",
}

try:  # pragma: no cover - exercised only where numba is installed
    import numba as _numba
except ImportError:  # the supported degraded mode: numba stays optional
    _numba = None

#: True when the numba backend can actually compile (import-time probe).
HAVE_NUMBA = _numba is not None


class BackendUnavailableError(RuntimeError):
    """An explicitly requested backend cannot run in this environment."""


def resolve_backend_name(configured: Optional[str]) -> str:
    """The effective backend name for a config value.

    ``configured`` wins when set; otherwise the ``REPRO_BACKEND``
    environment variable is consulted, and ``"default"`` closes the
    chain.  (The CLI ``--backend`` flag overwrites the config field, so
    the full precedence is CLI > config > env > default.)
    """
    name = configured or os.environ.get(BACKEND_ENV) or "default"
    if name not in BACKEND_NAMES:
        raise ValueError(
            f"unknown backend {name!r}; choose from {', '.join(BACKEND_NAMES)}"
        )
    return name


def available_backends() -> Dict[str, bool]:
    """Name -> availability in this environment."""
    return {
        "default": True,
        "fast": True,
        "numba": HAVE_NUMBA,
    }


def get_backend(configured: Optional[str] = None) -> "ArrayBackend":
    """A fresh backend instance for a config value (see :func:`resolve_backend_name`).

    Instances own their scratch pools, so every localizer gets its own
    (two localizers must never share hot buffers).
    """
    name = resolve_backend_name(configured)
    if name == "default":
        return NumpyBackend()
    if name == "fast":
        return FastNumpyBackend()
    if name == "numba":
        return NumbaBackend()
    raise ValueError(f"unknown backend {name!r}")  # pragma: no cover


class ScratchPool:
    """Named, capacity-growing scratch buffers with allocation accounting.

    ``get(key, shape, dtype)`` returns a view of a per-key buffer,
    allocating only when the key is new, the dtype changed, or the
    requested size outgrew the capacity (which then doubles, so repeated
    near-miss sizes converge instead of thrashing).  The counters are the
    backing data of the ``backend.allocations_per_step`` /
    ``backend.scratch_reuse`` metrics: a warmed-up weight path must show
    zero allocations per step.
    """

    def __init__(self) -> None:
        self._buffers: Dict[str, np.ndarray] = {}
        #: Buffers allocated over the pool's lifetime.
        self.allocations = 0
        #: ``get`` calls served from an existing buffer.
        self.reuses = 0
        #: Allocations since the last :meth:`begin_step`.
        self.allocations_this_step = 0
        #: Minimum capacity for *new* buffers.  Owners set this to the
        #: particle count so stochastic subset sizes (selection draws a
        #: different subset every iteration) cannot outgrow a warm buffer
        #: and re-trigger allocation mid-run.
        self.reserve_hint = 0

    def begin_step(self) -> None:
        """Open a new accounting window (one localizer iteration/batch)."""
        self.allocations_this_step = 0

    def get(self, key: str, shape: Tuple[int, ...], dtype) -> np.ndarray:
        """A ``shape``-sized view of the reusable buffer behind ``key``.

        The contents are *unspecified* (whatever the previous use left
        behind); callers must fully overwrite what they read.
        """
        dtype = np.dtype(dtype)
        size = 1
        for dim in shape:
            size *= int(dim)
        buffer = self._buffers.get(key)
        if buffer is None or buffer.dtype != dtype or buffer.size < size:
            target = self.reserve_hint if size <= self.reserve_hint else size
            capacity = 1
            while capacity < target:
                capacity *= 2
            buffer = np.empty(capacity, dtype=dtype)
            self._buffers[key] = buffer
            self.allocations += 1
            self.allocations_this_step += 1
        else:
            self.reuses += 1
        return buffer[:size].reshape(shape)


class ArrayBackend:
    """Kernel provider interface plus the shared bookkeeping.

    The base class *is* the reference provider contract: subclasses
    override the kernels they accelerate and inherit exact behavior for
    the rest.  ``accelerated`` is the dispatch switch the drivers test --
    a non-accelerated backend routes every call through the unmodified
    reference code paths, preserving the bitwise-parity contract by
    construction.
    """

    name: str = "default"
    dtype: np.dtype = np.dtype(np.float64)
    accelerated: bool = False

    def __init__(self) -> None:
        self.scratch = ScratchPool()

    def describe(self) -> Dict[str, str]:
        """JSON-safe identity, recorded in manifests and checkpoints."""
        return {"name": self.name, "dtype": str(self.dtype)}

    def begin_step(self) -> None:
        self.scratch.begin_step()

    # --- weight path -----------------------------------------------------------

    def reweight(
        self,
        particles: "ParticleSet",
        indices: np.ndarray,
        observed_cpm: float,
        sensor_x: float,
        sensor_y: float,
        efficiency: float = 1.0,
        background_cpm: float = 0.0,
        under_prediction_tempering: float = 1.0,
        interference_cpm: np.ndarray | float = 0.0,
        credibility_weight: float = 1.0,
    ) -> None:
        """One measurement's Bayesian weight update (reference float64)."""
        from repro.core.weighting import reweight_in_place

        reweight_in_place(
            particles,
            indices,
            observed_cpm,
            sensor_x,
            sensor_y,
            efficiency=efficiency,
            background_cpm=background_cpm,
            under_prediction_tempering=under_prediction_tempering,
            interference_cpm=interference_cpm,
            credibility_weight=credibility_weight,
        )

    def log_likelihood_batch(
        self,
        particles: "ParticleSet",
        sensor_x: np.ndarray,
        sensor_y: np.ndarray,
        counts: np.ndarray,
        efficiency: float = 1.0,
        background_cpm: float = 0.0,
        under_prediction_tempering: float = 1.0,
        interference_cpm: Optional[np.ndarray] = None,
        credibility_weights: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Fused log-likelihood of a whole step's delivered measurements.

        Returns an ``(n_delivered, n_particles)`` matrix: row ``b`` is the
        (tempered, credibility-scaled) log-likelihood of measurement ``b``
        under every particle's single-source hypothesis, evaluated at the
        *current* particle positions.  The reference implementation loops
        the per-sensor kernel; accelerated backends compute the whole
        matrix in one fused pass and are parity-tested against this.
        """
        from repro.core.weighting import tempered_poisson_log_likelihood
        from repro.physics.intensity import expected_cpm_free_space

        sensor_x = np.asarray(sensor_x, dtype=float)
        counts = np.asarray(counts, dtype=float)
        n_delivered = len(counts)
        out = np.empty((n_delivered, len(particles)), dtype=self.dtype)
        for b in range(n_delivered):
            rates = expected_cpm_free_space(
                float(sensor_x[b]),
                float(np.asarray(sensor_y, dtype=float)[b]),
                particles.xs,
                particles.ys,
                particles.strengths,
                efficiency=efficiency,
                background_cpm=background_cpm,
            )
            if interference_cpm is not None:
                rates = rates + float(interference_cpm[b])
            log_like = tempered_poisson_log_likelihood(
                float(counts[b]), rates, under_prediction_tempering
            )
            if credibility_weights is not None and credibility_weights[b] != 1.0:
                log_like = np.where(
                    np.isfinite(log_like),
                    float(credibility_weights[b]) * log_like,
                    log_like,
                )
            out[b] = log_like
        return out

    def apply_log_likelihood(
        self,
        particles: "ParticleSet",
        indices: np.ndarray,
        log_like_row: np.ndarray,
    ) -> None:
        """Apply one precomputed likelihood row to the selected subset.

        Mirrors ``reweight_in_place`` exactly (subset-mass preservation,
        degenerate-subset backfill, all-impossible early return, relative
        floor) but takes the log-likelihood as data instead of computing
        it -- the composition point of the fused batch update.
        """
        from repro.core.weighting import RELATIVE_FLOOR

        m = len(indices)
        if m == 0:
            return
        particles.mark_reweighted()
        subset_mass = float(particles.weights[indices].sum())
        if subset_mass <= 0:
            subset_mass = m / len(particles)
            particles.weights[indices] = subset_mass / m
        log_like = np.asarray(log_like_row, dtype=float)[indices]
        with np.errstate(divide="ignore"):
            log_prior = np.log(particles.weights[indices])
        log_post = log_like + log_prior
        finite = np.isfinite(log_post)
        if not np.any(finite):
            return
        peak = log_post[finite].max()
        posterior = np.exp(np.maximum(log_post - peak, np.log(RELATIVE_FLOOR)))
        particles.weights[indices] = posterior * (subset_mass / posterior.sum())

    # --- resampling ------------------------------------------------------------

    def prefix_sum(self, weights: np.ndarray, total: float) -> np.ndarray:
        """Normalized inclusive prefix-sum of positive-total weights.

        The systematic-resampling comb searches this; the reference form
        is ``np.cumsum(weights / total)`` with the final entry clamped to
        exactly 1.0.
        """
        cumulative = np.cumsum(weights / total)
        cumulative[-1] = 1.0
        return cumulative

    # --- spatial queries -------------------------------------------------------

    def multi_candidates_query(
        self,
        grid,
        xs: np.ndarray,
        ys: np.ndarray,
        radius,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Batched candidate query over many centers: CSR ``(indices, offsets)``.

        Row ``i`` -- ``indices[offsets[i]:offsets[i+1]]`` -- holds the
        grid candidates for center ``i`` (cells overlapping the disc's
        bounding box, no distance test).  ``radius`` is a scalar or
        per-center array.  The reference provider loops the scalar grid
        query, so each row *is* the scalar result by construction;
        accelerated providers answer the whole batch with one vectorized
        ``searchsorted`` over the flattened (center, column) key set and
        are array-equality-tested against this.
        """
        xs = np.asarray(xs, dtype=float)
        ys = np.asarray(ys, dtype=float)
        radii = np.asarray(radius, dtype=float)
        if radii.ndim == 0:
            radii = np.broadcast_to(radii, xs.shape)
        offsets = np.zeros(len(xs) + 1, dtype=np.int64)
        rows = []
        for i in range(len(xs)):
            row = grid.query_candidates(float(xs[i]), float(ys[i]), float(radii[i]))
            rows.append(row)
            offsets[i + 1] = offsets[i] + len(row)
        indices = (
            np.concatenate(rows) if rows else np.empty(0, dtype=np.int64)
        )
        return indices, offsets

    def multi_disc_query(
        self,
        grid,
        xs: np.ndarray,
        ys: np.ndarray,
        radius,
        sort_rows: bool = True,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Batched exact disc query: CSR rows bit-identical to ``query_disc``.

        Each row carries the exact float64 distance test and ascending
        order of the scalar path, so batched fusion-range selection and
        support queries keep the brute-force contract.  The reference
        provider loops ``grid.query_disc``; accelerated providers batch
        the whole thing and route the large buffers through their scratch
        pools.

        ``sort_rows=False`` relaxes the per-row ordering to *unspecified*
        (contents still exact); kernel-gather callers that reduce over
        each row use it to skip the ordering pass.
        """
        xs = np.asarray(xs, dtype=float)
        ys = np.asarray(ys, dtype=float)
        radii = np.asarray(radius, dtype=float)
        if radii.ndim == 0:
            radii = np.broadcast_to(radii, xs.shape)
        offsets = np.zeros(len(xs) + 1, dtype=np.int64)
        rows = []
        for i in range(len(xs)):
            row = grid.query_disc(float(xs[i]), float(ys[i]), float(radii[i]))
            rows.append(row)
            offsets[i + 1] = offsets[i] + len(row)
        indices = (
            np.concatenate(rows) if rows else np.empty(0, dtype=np.int64)
        )
        return indices, offsets

    # --- estimation ------------------------------------------------------------

    def meanshift_modes(
        self,
        particles: "ParticleSet",
        seeds: np.ndarray,
        config: "LocalizerConfig",
        stats: Optional[dict] = None,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Segmented mean-shift reduction over the particle population.

        Only accelerated backends provide this; the default routes
        through the existing truncated/dense drivers in
        :mod:`repro.core.meanshift`.
        """
        raise NotImplementedError(
            f"backend {self.name!r} has no mean-shift kernel; "
            "use the meanshift module drivers"
        )

    # --- ground-truth transport -------------------------------------------------

    def source_intensity_fold(
        self,
        xs: np.ndarray,
        ys: np.ndarray,
        sources: Sequence,
        exponents: np.ndarray,
    ) -> np.ndarray:
        """Total attenuated intensity of all sources at each point.

        The inner fold of :func:`repro.physics.intensity.batched_expected_cpm`
        (before the CPM conversion / efficiency / background affine).  The
        reference left-fold accumulates sources in order, matching the
        scalar summation bitwise.
        """
        total = np.zeros(len(xs), dtype=float)
        for j, source in enumerate(sources):
            dx = xs - source.x
            dy = ys - source.y
            total += (
                source.strength
                / (1.0 + dx * dx + dy * dy)
                * np.exp(-exponents[:, j])
            )
        return total


class NumpyBackend(ArrayBackend):
    """The float64 reference backend (``"default"``): bitwise parity."""


class FastNumpyBackend(ArrayBackend):
    """Float32 SoA backend (``"fast"``): fused kernels, preallocated scratch.

    Compute dtype is float32 throughout the hot kernels (particle storage
    stays float64 -- the filter state is unchanged); float32 halves
    memory traffic and doubles SIMD width, and the Poisson log-likelihood
    needs nowhere near 53 bits (the weights are clamped at a 1e-30
    *relative* floor anyway).  Parity with the reference kernels is
    tolerance-based, proportional to float32 resolution of the values
    involved (see tests/test_core_backend.py).
    """

    name = "fast"
    dtype = np.dtype(np.float32)
    accelerated = True

    #: Kernel values below exp(-0.5 * 4^2) * safety are what truncation
    #: discards; this tiny total guards the mean-shift ratio denominator.
    _TINY_TOTAL = np.float32(1e-30)

    def __init__(self) -> None:
        super().__init__()
        self._mirror_revision = -1
        self._mirror_size = -1

    # --- float32 mirrors -------------------------------------------------------

    def _position_mirrors(
        self, particles: "ParticleSet"
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Float32 copies of xs/ys/strengths, synced by position revision.

        Positions and strengths only mutate together (movement, resample,
        injection -- all ``mark_moved``), so one revision key covers all
        three.  Sync is a cast-copy into the same scratch buffers: zero
        allocations once warmed up.
        """
        scratch = self.scratch
        n = len(particles)
        if n > scratch.reserve_hint:
            scratch.reserve_hint = n
        xs32 = scratch.get("mirror.xs", (n,), np.float32)
        ys32 = scratch.get("mirror.ys", (n,), np.float32)
        st32 = scratch.get("mirror.strengths", (n,), np.float32)
        revision = particles._position_revision
        if revision != self._mirror_revision or n != self._mirror_size:
            np.copyto(xs32, particles.xs)
            np.copyto(ys32, particles.ys)
            np.copyto(st32, particles.strengths)
            self._mirror_revision = revision
            self._mirror_size = n
        return xs32, ys32, st32

    # --- weight path -----------------------------------------------------------

    def reweight(
        self,
        particles: "ParticleSet",
        indices: np.ndarray,
        observed_cpm: float,
        sensor_x: float,
        sensor_y: float,
        efficiency: float = 1.0,
        background_cpm: float = 0.0,
        under_prediction_tempering: float = 1.0,
        interference_cpm: np.ndarray | float = 0.0,
        credibility_weight: float = 1.0,
    ) -> None:
        if not 0.0 <= credibility_weight <= 1.0:
            raise ValueError(
                f"credibility_weight must be in [0, 1], got {credibility_weight}"
            )
        m = len(indices)
        if m == 0:
            return
        particles.mark_reweighted()
        scratch = self.scratch
        prior = scratch.get("rw.prior", (m,), np.float64)
        np.take(particles.weights, indices, out=prior)
        subset_mass = float(prior.sum())
        if subset_mass <= 0:
            subset_mass = m / len(particles)
            particles.weights[indices] = subset_mass / m
            prior.fill(subset_mass / m)
        log_like = self._subset_log_likelihood(
            particles,
            indices,
            observed_cpm,
            sensor_x,
            sensor_y,
            efficiency,
            background_cpm,
            under_prediction_tempering,
            interference_cpm,
        )
        if credibility_weight != 1.0:
            scaled = scratch.get("rw.cred", (m,), np.float32)
            np.multiply(log_like, np.float32(credibility_weight), out=scaled)
            finite32 = scratch.get("rw.finite32", (m,), bool)
            np.isfinite(log_like, out=finite32)
            np.copyto(log_like, scaled, where=finite32)
        self._apply_posterior(particles, indices, prior, log_like, subset_mass)

    def _subset_log_likelihood(
        self,
        particles: "ParticleSet",
        indices: np.ndarray,
        count: float,
        sensor_x: float,
        sensor_y: float,
        efficiency: float,
        background_cpm: float,
        tempering: float,
        interference_cpm: np.ndarray | float,
    ) -> np.ndarray:
        """Tempered Poisson log-likelihood of the subset, fused in float32."""
        scratch = self.scratch
        m = len(indices)
        xs32, ys32, st32 = self._position_mirrors(particles)
        d_sq = scratch.get("rw.dsq", (m,), np.float32)
        tmp = scratch.get("rw.tmp", (m,), np.float32)
        np.take(xs32, indices, out=d_sq)
        np.subtract(d_sq, np.float32(sensor_x), out=d_sq)
        np.multiply(d_sq, d_sq, out=d_sq)
        np.take(ys32, indices, out=tmp)
        np.subtract(tmp, np.float32(sensor_y), out=tmp)
        np.multiply(tmp, tmp, out=tmp)
        np.add(d_sq, tmp, out=d_sq)
        np.add(d_sq, np.float32(1.0), out=d_sq)
        rates = scratch.get("rw.rates", (m,), np.float32)
        np.take(st32, indices, out=rates)
        np.divide(rates, d_sq, out=rates)
        np.multiply(
            rates, np.float32(CPM_PER_MICROCURIE * efficiency), out=rates
        )
        offset = background_cpm
        if np.ndim(interference_cpm) == 0:
            offset = background_cpm + float(interference_cpm)
            np.add(rates, np.float32(offset), out=rates)
        else:
            np.add(rates, np.float32(background_cpm), out=rates)
            intf = scratch.get("rw.intf", (m,), np.float32)
            np.copyto(intf, interference_cpm)
            np.add(rates, intf, out=rates)
        log_like = scratch.get("rw.ll", (m,), np.float32)
        positive = scratch.get("rw.positive", (m,), bool)
        np.greater(rates, 0.0, out=positive)
        log_gamma = float(gammaln(count + 1.0))
        with np.errstate(divide="ignore", invalid="ignore"):
            np.log(rates, out=log_like, where=positive)
        np.multiply(log_like, np.float32(count), out=log_like, where=positive)
        np.subtract(log_like, rates, out=log_like, where=positive)
        np.subtract(
            log_like, np.float32(log_gamma), out=log_like, where=positive
        )
        zero_rate_fill = np.float32(0.0 if count == 0 else -np.inf)
        np.logical_not(positive, out=positive)
        np.copyto(log_like, zero_rate_fill, where=positive)
        if tempering < 1.0:
            at_count = (
                count * np.log(count) - count - log_gamma if count > 0 else 0.0
            )
            under = positive  # reuse: positive mask is spent
            np.less(rates, np.float32(count), out=under)
            tempered = scratch.get("rw.tempered", (m,), np.float32)
            np.multiply(log_like, np.float32(tempering), out=tempered)
            np.add(
                tempered,
                np.float32((1.0 - tempering) * at_count),
                out=tempered,
            )
            np.copyto(log_like, tempered, where=under)
        return log_like

    def _apply_posterior(
        self,
        particles: "ParticleSet",
        indices: np.ndarray,
        prior: np.ndarray,
        log_like: np.ndarray,
        subset_mass: float,
    ) -> None:
        """Shared tail of the weight update: prior + likelihood -> weights."""
        from repro.core.weighting import RELATIVE_FLOOR

        scratch = self.scratch
        m = len(indices)
        log_post = scratch.get("rw.logpost", (m,), np.float64)
        with np.errstate(divide="ignore"):
            np.log(prior, out=log_post)
        log_post += log_like
        finite = scratch.get("rw.finite", (m,), bool)
        np.isfinite(log_post, out=finite)
        if not finite.any():
            return
        peak = float(np.max(log_post, initial=-np.inf, where=finite))
        np.subtract(log_post, peak, out=log_post)
        np.maximum(log_post, np.log(RELATIVE_FLOOR), out=log_post)
        np.exp(log_post, out=log_post)
        total = float(log_post.sum())
        np.multiply(log_post, subset_mass / total, out=log_post)
        particles.weights[indices] = log_post

    def log_likelihood_batch(
        self,
        particles: "ParticleSet",
        sensor_x: np.ndarray,
        sensor_y: np.ndarray,
        counts: np.ndarray,
        efficiency: float = 1.0,
        background_cpm: float = 0.0,
        under_prediction_tempering: float = 1.0,
        interference_cpm: Optional[np.ndarray] = None,
        credibility_weights: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """One fused ``(n_delivered, n_particles)`` float32 pass.

        The per-sensor Python loop of the reference collapses into
        broadcasted row arithmetic over scratch matrices; quarantined
        readings never reach this kernel (the localizer drops them during
        admission), and per-row credibility weights compose here exactly
        as in the scalar path.  The returned matrix is a scratch view --
        consume it before the next batch call.
        """
        scratch = self.scratch
        counts = np.asarray(counts, dtype=np.float64)
        n_delivered = len(counts)
        n = len(particles)
        xs32, ys32, st32 = self._position_mirrors(particles)
        shape = (n_delivered, n)
        sx = scratch.get("batch.sx", (n_delivered,), np.float32)
        sy = scratch.get("batch.sy", (n_delivered,), np.float32)
        np.copyto(sx, sensor_x)
        np.copyto(sy, sensor_y)
        counts32 = scratch.get("batch.counts", (n_delivered,), np.float32)
        np.copyto(counts32, counts)
        # log Gamma(count + 1) per row, in float64 (large counts lose all
        # fractional precision in float32; one tiny host-side vector).
        log_gamma = gammaln(counts + 1.0)

        d_sq = scratch.get("batch.dsq", shape, np.float32)
        tmp = scratch.get("batch.tmp", shape, np.float32)
        np.subtract(xs32[None, :], sx[:, None], out=d_sq)
        np.multiply(d_sq, d_sq, out=d_sq)
        np.subtract(ys32[None, :], sy[:, None], out=tmp)
        np.multiply(tmp, tmp, out=tmp)
        np.add(d_sq, tmp, out=d_sq)
        np.add(d_sq, np.float32(1.0), out=d_sq)
        rates = tmp  # d_sq holds 1 + d^2; tmp is free to become the rates
        np.divide(st32[None, :], d_sq, out=rates)
        np.multiply(
            rates, np.float32(CPM_PER_MICROCURIE * efficiency), out=rates
        )
        np.add(rates, np.float32(background_cpm), out=rates)
        if interference_cpm is not None:
            intf = scratch.get("batch.intf", (n_delivered,), np.float32)
            np.copyto(intf, interference_cpm)
            np.add(rates, intf[:, None], out=rates)

        log_like = d_sq  # 1 + d^2 is spent; reuse as the output matrix
        positive = scratch.get("batch.positive", shape, bool)
        np.greater(rates, 0.0, out=positive)
        row = scratch.get("batch.row", (n_delivered,), np.float32)
        with np.errstate(divide="ignore", invalid="ignore"):
            np.log(rates, out=log_like, where=positive)
        np.multiply(log_like, counts32[:, None], out=log_like, where=positive)
        np.subtract(log_like, rates, out=log_like, where=positive)
        np.copyto(row, log_gamma)
        np.subtract(log_like, row[:, None], out=log_like, where=positive)
        fill = scratch.get("batch.fill", (n_delivered,), np.float32)
        np.copyto(fill, np.where(counts == 0.0, 0.0, -np.inf))
        np.logical_not(positive, out=positive)
        np.copyto(log_like, fill[:, None], where=positive)

        if under_prediction_tempering < 1.0:
            alpha = np.float32(under_prediction_tempering)
            with np.errstate(divide="ignore", invalid="ignore"):
                at_count = np.where(
                    counts > 0.0,
                    counts * np.log(np.maximum(counts, 1.0))
                    - counts
                    - log_gamma,
                    0.0,
                )
            under = positive  # spent; reuse as the under-prediction mask
            np.less(rates, counts32[:, None], out=under)
            scaled = rates  # rates are spent after the mask
            np.multiply(log_like, alpha, out=scaled)
            np.copyto(row, (1.0 - under_prediction_tempering) * at_count)
            np.add(scaled, row[:, None], out=scaled)
            np.copyto(log_like, scaled, where=under)
            spare = scaled
        else:
            spare = rates
        if credibility_weights is not None:
            cred = scratch.get("batch.cred", (n_delivered,), np.float32)
            np.copyto(cred, credibility_weights)
            finite = positive
            np.isfinite(log_like, out=finite)
            np.multiply(log_like, cred[:, None], out=spare)
            np.copyto(log_like, spare, where=finite)
        return log_like

    def apply_log_likelihood(
        self,
        particles: "ParticleSet",
        indices: np.ndarray,
        log_like_row: np.ndarray,
    ) -> None:
        m = len(indices)
        if m == 0:
            return
        particles.mark_reweighted()
        scratch = self.scratch
        prior = scratch.get("rw.prior", (m,), np.float64)
        np.take(particles.weights, indices, out=prior)
        subset_mass = float(prior.sum())
        if subset_mass <= 0:
            subset_mass = m / len(particles)
            particles.weights[indices] = subset_mass / m
            prior.fill(subset_mass / m)
        log_like = scratch.get("rw.ll", (m,), np.float32)
        np.take(log_like_row, indices, out=log_like)
        self._apply_posterior(particles, indices, prior, log_like, subset_mass)

    # --- resampling ------------------------------------------------------------

    def prefix_sum(self, weights: np.ndarray, total: float) -> np.ndarray:
        cumulative = self.scratch.get("rs.cum", (len(weights),), np.float64)
        np.cumsum(weights, out=cumulative)
        np.divide(cumulative, total, out=cumulative)
        cumulative[-1] = 1.0
        return cumulative

    # --- spatial queries -------------------------------------------------------

    def multi_candidates_query(
        self,
        grid,
        xs: np.ndarray,
        ys: np.ndarray,
        radius,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """One vectorized searchsorted pass; rows array-equal to the scalar loop."""
        return grid.query_candidates_batch(xs, ys, radius, pool=self.scratch)

    #: Below this many centers the vectorized batch kernel's fixed
    #: overhead (~40 array ops) exceeds the cost of just looping the
    #: scalar query; mean-shift refill batches are typically 1-10 rows.
    MIN_VECTORIZED_CENTERS = 12

    def multi_disc_query(
        self,
        grid,
        xs: np.ndarray,
        ys: np.ndarray,
        radius,
        sort_rows: bool = True,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Batched exact disc query through the scratch pool.

        The distance test stays float64 inside the grid kernel, so each
        CSR row is bit-identical to the scalar ``query_disc`` -- batching
        changes the driving, not the arithmetic.  Returned arrays are
        views into pool buffers (``gq.*``): valid until the next batched
        query on this backend.  Tiny batches (fewer than
        ``MIN_VECTORIZED_CENTERS``) fall back to the scalar loop, whose
        per-center cost undercuts the vectorized kernel's setup.
        """
        if len(np.atleast_1d(xs)) < self.MIN_VECTORIZED_CENTERS:
            return super().multi_disc_query(grid, xs, ys, radius, sort_rows)
        return grid.query_disc_batch(
            xs, ys, radius, pool=self.scratch, sort_rows=sort_rows
        )

    # --- mean-shift ------------------------------------------------------------

    def meanshift_modes(
        self,
        particles: "ParticleSet",
        seeds: np.ndarray,
        config: "LocalizerConfig",
        stats: Optional[dict] = None,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Padded-SoA truncated mean-shift: the segmented reduction, fused.

        The reference truncated driver re-concatenates each active seed's
        ragged candidate list every sweep (``np.concatenate`` +
        ``np.repeat`` + ``np.add.reduceat``).  Here every seed owns one
        row of fixed-capacity float32 scratch matrices (positions and
        weights, zero-padded), so a sweep is five broadcasted row
        operations and three row-sums -- no ragged bookkeeping at all.
        Converged seeds are swapped to the tail so live sweeps shrink.

        Same contract as ``truncated_mean_shift_modes``: results agree
        with the dense reference to well within the merge radius
        (parity-tested), not bitwise.
        """
        from repro.core.meanshift import mean_shift_modes, padded_candidate_rows

        bandwidth = config.bandwidth
        truncation_sigmas = config.meanshift_truncation_sigmas
        weights = particles.weights
        total_weight = weights.sum()
        if total_weight <= 0:
            raise ValueError("mean-shift needs positive total weight")
        if (
            truncation_sigmas <= 0
            or len(particles) < config.meanshift_truncation_min_particles
        ):
            # Small populations: the dense float64 sweep is already cheap
            # and the padding machinery would dominate.
            return mean_shift_modes(
                seeds,
                particles.positions,
                weights,
                bandwidth=bandwidth,
                tol=config.meanshift_tol,
                max_iter=config.meanshift_max_iter,
                stats=stats,
            )

        grid = particles.grid(config.grid_cell())
        scratch = self.scratch
        n_seeds = len(seeds)
        radius = truncation_sigmas * bandwidth
        margin = bandwidth
        gather_radius = radius + margin
        inv_two_h_sq = np.float32(0.5 / (bandwidth * bandwidth))
        tol = config.meanshift_tol
        xs32, ys32, _ = self._position_mirrors(particles)
        w32 = scratch.get("ms.w32", (len(particles),), np.float32)
        np.copyto(w32, weights)

        idx_rows, counts, capacity = padded_candidate_rows(
            grid, seeds, gather_radius, backend=self
        )
        shape = (n_seeds, capacity)
        px = scratch.get("ms.px", shape, np.float32)
        py = scratch.get("ms.py", shape, np.float32)
        pw = scratch.get("ms.pw", shape, np.float32)
        t0 = scratch.get("ms.t0", shape, np.float32)
        t1 = scratch.get("ms.t1", shape, np.float32)
        columns = scratch.get("ms.cols", (capacity,), np.int64)
        np.copyto(columns, np.arange(capacity))

        def fill_span(lo: int, hi: int) -> None:
            """(Re)load the SoA rows in [lo, hi).

            Basic slices only: ``out=px[rows]`` with a fancy index would
            write into a temporary copy and silently leave the scratch
            rows holding stale garbage.  Only the live prefix (widest
            count in the span) is gathered; the tail is memset so padded
            slots hold finite coordinates and zero weight.
            """
            width = int(counts[lo:hi].max())
            np.take(xs32, idx_rows[lo:hi, :width], out=px[lo:hi, :width])
            np.take(ys32, idx_rows[lo:hi, :width], out=py[lo:hi, :width])
            np.take(w32, idx_rows[lo:hi, :width], out=pw[lo:hi, :width])
            # Zero the padding weights so padded slots contribute nothing.
            pw[lo:hi, :width] *= columns[None, :width] < counts[lo:hi, None]
            px[lo:hi, width:] = 0
            py[lo:hi, width:] = 0
            pw[lo:hi, width:] = 0

        fill_span(0, n_seeds)
        sx = scratch.get("ms.sx", (n_seeds,), np.float32)
        sy = scratch.get("ms.sy", (n_seeds,), np.float32)
        np.copyto(sx, seeds[:, 0])
        np.copyto(sy, seeds[:, 1])
        center_x = scratch.get("ms.cx", (n_seeds,), np.float32)
        center_y = scratch.get("ms.cy", (n_seeds,), np.float32)
        np.copyto(center_x, sx)
        np.copyto(center_y, sy)
        order = np.arange(n_seeds)  # row -> seed id, updated by compaction

        totals = scratch.get("ms.tot", (n_seeds,), np.float32)
        numer_x = scratch.get("ms.nx", (n_seeds,), np.float32)
        numer_y = scratch.get("ms.ny", (n_seeds,), np.float32)
        # Per-row gather margin.  A row that outruns its margin re-gathers
        # with the margin doubled (capped), so long-travelling seeds pay
        # O(log distance) re-gathers instead of one per bandwidth moved.
        row_margin = scratch.get("ms.margin", (n_seeds,), np.float32)
        row_margin.fill(np.float32(margin))
        row_margin_sq = scratch.get("ms.marginsq", (n_seeds,), np.float32)
        row_margin_sq.fill(np.float32(margin * margin))
        max_margin = np.float32(3.0 * margin)
        deep_margin = np.float32(6.0 * margin)
        # Aitken acceleration state: the previous sweep's shift vector and
        # squared length, plus the alternation flag (see the boost block).
        shift_prev_x = scratch.get("ms.dxp", (n_seeds,), np.float32)
        shift_prev_y = scratch.get("ms.dyp", (n_seeds,), np.float32)
        moved_prev = scratch.get("ms.pmv", (n_seeds,), np.float32)
        boosted = scratch.get("ms.boost", (n_seeds,), np.bool_)
        shift_prev_x.fill(0)
        shift_prev_y.fill(0)
        moved_prev.fill(0)
        boosted.fill(False)
        jump_cap = np.float32(0.5 * bandwidth)
        # No jumps in the endgame: below this shift the row re-enters the
        # plain fixed-point sequence, so its rest position phase-matches
        # the reference iteration (which stops at its first sub-tol step).
        # Jumping all the way to rest would land at an arbitrary point of
        # the tol-ball and show up as extraction deviation.
        boost_floor_sq = np.float32((3.0 * tol) ** 2)
        # Two centers this close follow (near-)identical trajectories from
        # here on -- the next iterate depends only on the current center and
        # the particle population -- so the later row can retire and adopt
        # the earlier row's final mode.  Sized to stay well inside the
        # extraction merge radius (clustering merges modes within a
        # bandwidth), so a cross-basin merge would need two distinct modes
        # closer than bandwidth/16: those are duplicates to the estimator
        # anyway.
        merge_sq = np.float32((0.0625 * bandwidth) ** 2)
        redirect: Dict[int, int] = {}  # seed id -> seed id it now shadows
        sweeps = 0
        gathers = n_seeds
        candidates_total = 0
        merges = 0
        alive = n_seeds
        # Per-seed results, recorded the sweep a row retires.  A finished
        # row's center has stopped moving (it advanced < tol this sweep),
        # so the kernel total just computed for it *is* its mode density
        # to within the convergence tolerance -- recording it here removes
        # the final full-matrix density pass entirely.
        modes = np.empty((n_seeds, 2), dtype=float)
        densities = np.zeros(n_seeds, dtype=float)
        modes[:, 0] = seeds[:, 0]
        modes[:, 1] = seeds[:, 1]
        for _ in range(config.meanshift_max_iter):
            if alive == 0:
                break
            sweeps += 1
            candidates_total += int(counts[:alive].sum())
            # Live rows are padded out to the full pow2 capacity, but the
            # arithmetic only needs to reach the widest live row.
            cols = int(counts[:alive].max())
            view = np.s_[:alive, :cols]
            rows = slice(0, alive)
            np.subtract(px[view], sx[rows, None], out=t0[view])
            np.multiply(t0[view], t0[view], out=t0[view])
            np.subtract(py[view], sy[rows, None], out=t1[view])
            np.multiply(t1[view], t1[view], out=t1[view])
            np.add(t0[view], t1[view], out=t0[view])
            np.multiply(t0[view], -inv_two_h_sq, out=t0[view])
            np.exp(t0[view], out=t0[view])
            np.multiply(t0[view], pw[view], out=t0[view])
            np.sum(t0[view], axis=1, out=totals[rows])
            # Fused multiply-reduce: one pass per numerator instead of a
            # full-matrix product materialized into t1 and then summed.
            np.einsum("ij,ij->i", t0[view], px[view], out=numer_x[rows])
            np.einsum("ij,ij->i", t0[view], py[view], out=numer_y[rows])
            stranded = totals[rows] <= 0
            np.maximum(totals[rows], self._TINY_TOTAL, out=totals[rows])
            np.divide(numer_x[rows], totals[rows], out=numer_x[rows])
            np.divide(numer_y[rows], totals[rows], out=numer_y[rows])
            np.copyto(numer_x[rows], sx[rows], where=stranded)
            np.copyto(numer_y[rows], sy[rows], where=stranded)
            shift_x = numer_x[rows] - sx[rows]
            shift_y = numer_y[rows] - sy[rows]
            moved_sq = shift_x * shift_x + shift_y * shift_y
            np.copyto(sx[rows], numer_x[rows])
            np.copyto(sy[rows], numer_y[rows])
            # A row may only finish on a sweep whose starting point was
            # natural: right after a jump the extrapolated position can sit
            # anywhere inside the tol-ball, so one more unboosted sweep
            # pins the rest position to the same fixed-point resolution as
            # the reference iteration.
            finished = ((moved_sq < tol * tol) & ~boosted[rows]) | stranded
            # Aitken delta-squared acceleration: near a mode the shift map
            # is a smooth contraction, so consecutive shifts shrink by a
            # near-constant ratio r and the remaining travel telescopes to
            # shift * r / (1 - r).  Jumping that distance skips the long
            # geometric tail; convergence is still declared only by the
            # raw ``moved < tol`` test on an unboosted sweep, so the fixed
            # point (and the reported mode) is unchanged.  Rows alternate
            # boosted / natural sweeps because the shift measured right
            # after a jump says nothing about the contraction ratio.
            ratio_num = shift_x * shift_prev_x[rows] + shift_y * shift_prev_y[rows]
            ratio = ratio_num / np.maximum(moved_prev[rows], self._TINY_TOTAL)
            gain = np.where(
                ~finished
                & ~boosted[rows]
                & (moved_prev[rows] > 0)
                & (moved_sq > boost_floor_sq)
                & (ratio > 0)
                & (ratio < np.float32(0.9)),
                ratio / (np.float32(1.0) - ratio),
                np.float32(0.0),
            )
            # Cap the jump length: an uncapped extrapolation from two
            # large shifts can fly across a basin boundary and merge two
            # genuinely distinct modes.
            np.minimum(
                gain,
                jump_cap / np.sqrt(np.maximum(moved_sq, self._TINY_TOTAL)),
                out=gain,
            )
            sx[rows] += shift_x * gain
            sy[rows] += shift_y * gain
            boosted[rows] = gain > 0
            shift_prev_x[rows] = shift_x
            shift_prev_y[rows] = shift_y
            moved_prev[rows] = moved_sq
            # Duplicate-trajectory detection: row j shadows the first row
            # whose center coincides with its own.  Shadowing only saves
            # work, so with a handful of live rows the O(alive^2) scan
            # costs more than the sweeps it would avoid -- skip it.
            if alive > 4:
                dxp = sx[rows, None] - sx[None, :alive]
                dyp = sy[rows, None] - sy[None, :alive]
                close = dxp * dxp + dyp * dyp <= merge_sq
                shadow_of = np.argmax(close, axis=0)  # diagonal is always True
                shadowed = (shadow_of < np.arange(alive)) & ~finished
                if shadowed.any():
                    snapshot = order[:alive].copy()
                    for j in np.nonzero(shadowed)[0]:
                        redirect[int(snapshot[j])] = int(snapshot[shadow_of[j]])
                        merges += 1
            else:
                shadowed = np.zeros(alive, dtype=bool)
            drift_sq = (sx[rows] - center_x[rows]) ** 2 + (
                sy[rows] - center_y[rows]
            ) ** 2
            retire = finished | shadowed
            refill = np.nonzero(~retire & (drift_sq > row_margin_sq[rows]))[0]
            if len(refill):
                # One batched exact-disc gather for every drifted row
                # (same disc filter padded_candidate_rows applies) instead
                # of a scalar query per row.  In the straggler phase the
                # margin doubles on each re-gather so long-travelling rows
                # stop re-querying every bandwidth moved; with many rows
                # live the margin stays tight, because one wide row widens
                # ``cols`` -- and the sweep arithmetic -- for all of them.
                if alive <= 8:
                    # Deep stragglers (a handful of slowly-travelling rows)
                    # get an even wider leash: the extra columns only pad
                    # those few rows, and every avoided re-gather saves a
                    # grid query plus a scatter-fill.
                    cap = max_margin if alive > 4 else deep_margin
                    grown_margin = np.minimum(row_margin[refill] * 2, cap)
                    row_margin[refill] = grown_margin
                    row_margin_sq[refill] = grown_margin * grown_margin
                flat, flat_offsets = self.multi_disc_query(
                    grid,
                    sx[refill].astype(np.float64),
                    sy[refill].astype(np.float64),
                    radius + row_margin[refill].astype(np.float64),
                    sort_rows=False,
                )
                gathers += len(refill)
                widest = int(np.max(flat_offsets[1:] - flat_offsets[:-1]))
                regrown = widest > capacity
                if regrown:
                    # Outgrew the row capacity: regrow every matrix (rare
                    # -- a seed drifting into a much denser region).
                    while capacity < widest:
                        capacity *= 2
                    grown = np.zeros((n_seeds, capacity), dtype=np.int64)
                    grown[:alive, : idx_rows.shape[1]] = idx_rows[:alive]
                    idx_rows = grown
                    shape = (n_seeds, capacity)
                    px = scratch.get("ms.px", shape, np.float32)
                    py = scratch.get("ms.py", shape, np.float32)
                    pw = scratch.get("ms.pw", shape, np.float32)
                    t0 = scratch.get("ms.t0", shape, np.float32)
                    t1 = scratch.get("ms.t1", shape, np.float32)
                    columns = scratch.get("ms.cols", (capacity,), np.int64)
                    np.copyto(columns, np.arange(capacity))
                lengths = flat_offsets[1:] - flat_offsets[:-1]
                pad = columns[None, :widest] < lengths[:, None]
                fresh = np.zeros((len(refill), widest), dtype=np.int64)
                fresh[pad] = flat
                idx_rows[refill, :widest] = fresh
                idx_rows[refill, widest:] = 0
                counts[refill] = lengths
                center_x[refill] = sx[refill]
                center_y[refill] = sy[refill]
                if regrown:
                    # The re-fetched scratch matrices do not carry the old
                    # contents; reload the live rows (retired rows' data
                    # is never read again).
                    fill_span(0, alive)
                else:
                    # The refilled rows are scattered, so this is the
                    # fancy-indexed form of fill_span: padding columns
                    # gather index 0 but carry weight 0, and the tails
                    # beyond the widest fresh row are zeroed outright.
                    px[refill, :widest] = xs32[fresh]
                    py[refill, :widest] = ys32[fresh]
                    pw[refill, :widest] = w32[fresh] * pad
                    px[refill, widest:] = 0
                    py[refill, widest:] = 0
                    pw[refill, widest:] = 0
            # Retire converged and shadowed rows: record their results,
            # then compact the live window by copying the surviving tail
            # rows into the freed slots (retired row data is never read
            # again, so a one-way copy replaces the old pairwise swap).
            ret_rows = np.nonzero(retire)[0]
            if len(ret_rows):
                ret_ids = order[ret_rows]
                modes[ret_ids, 0] = sx[ret_rows]
                modes[ret_ids, 1] = sy[ret_rows]
                densities[ret_ids] = totals[ret_rows]
                new_alive = alive - len(ret_rows)
                movers = np.nonzero(~retire[new_alive:alive])[0] + new_alive
                slots = ret_rows[ret_rows < new_alive]
                if len(slots):
                    # Padding beyond a mover's count is zero, so spanning
                    # the widest of both row sets keeps the slot rows'
                    # tails zeroed too.
                    span = int(max(counts[slots].max(), counts[movers].max()))
                    for array in (px, py, pw, idx_rows):
                        array[slots, :span] = array[movers, :span]
                    for vector in (
                        sx, sy, center_x, center_y, counts, order,
                        row_margin, row_margin_sq,
                        shift_prev_x, shift_prev_y, moved_prev, boosted,
                    ):
                        vector[slots] = vector[movers]
                alive = new_alive

        if alive:
            # max_iter exhausted with live rows: report their current
            # centers and last-computed kernel totals.
            live_ids = order[:alive]
            modes[live_ids, 0] = sx[:alive]
            modes[live_ids, 1] = sy[:alive]
            densities[live_ids] = totals[:alive]
        densities /= float(total_weight)
        # Shadowed seeds adopt their survivor's mode and density (chains
        # resolve front-to-back: a survivor may itself have been shadowed
        # in a later sweep).
        for seed in list(redirect):
            root = seed
            while root in redirect:
                root = redirect[root]
            modes[seed] = modes[root]
            densities[seed] = densities[root]
        if stats is not None:
            stats["sweeps"] = sweeps
            stats["n_seeds"] = n_seeds
            stats["gathers"] = gathers
            stats["candidates"] = candidates_total
            stats["merges"] = merges
        return modes, densities

    # --- ground-truth transport -------------------------------------------------

    def source_intensity_fold(
        self,
        xs: np.ndarray,
        ys: np.ndarray,
        sources: Sequence,
        exponents: np.ndarray,
    ) -> np.ndarray:
        """Vectorized fold: all sources in one broadcasted float32 pass."""
        if not len(sources):
            return np.zeros(len(xs), dtype=float)
        sx = np.array([s.x for s in sources], dtype=np.float32)
        sy = np.array([s.y for s in sources], dtype=np.float32)
        strength = np.array([s.strength for s in sources], dtype=np.float32)
        dx = np.asarray(xs, dtype=np.float32)[:, None] - sx[None, :]
        dy = np.asarray(ys, dtype=np.float32)[:, None] - sy[None, :]
        contributions = strength[None, :] / (1.0 + dx * dx + dy * dy)
        contributions *= np.exp(-exponents.astype(np.float32))
        return contributions.sum(axis=1, dtype=np.float64)


if HAVE_NUMBA:  # pragma: no cover - requires an optional dependency

    @_numba.njit(cache=True, parallel=True, fastmath=True)
    def _numba_batch_log_likelihood(  # noqa: D103 - jitted kernel
        xs, ys, strengths, sensor_x, sensor_y, counts, log_gamma, at_count,
        scale, background, alpha, interference, credibility, out,
    ):
        n_delivered, n = out.shape
        for b in _numba.prange(n_delivered):
            count = counts[b]
            for p in range(n):
                dx = xs[p] - sensor_x[b]
                dy = ys[p] - sensor_y[b]
                rate = (
                    scale * strengths[p] / (np.float32(1.0) + dx * dx + dy * dy)
                    + background
                    + interference[b]
                )
                if rate > 0.0:
                    value = (
                        count * np.log(rate) - rate - log_gamma[b]
                    )
                else:
                    value = np.float32(0.0) if count == 0.0 else -np.inf
                if alpha < 1.0 and rate < count:
                    value = at_count[b] + alpha * (value - at_count[b])
                if np.isfinite(value):
                    value = credibility[b] * value
                out[b, p] = value

    @_numba.njit(cache=True)
    def _numba_multi_disc_query(  # noqa: D103 - jitted kernel
        sorted_cids, order, pxs, pys, cx, cy, radii, x0, y0, inv, n_cols, n_rows,
    ):
        n_centers = len(cx)
        # Pass 1: candidate capacity (sum of per-column slice widths).
        total_candidates = np.int64(0)
        for i in range(n_centers):
            cx_lo = np.int64(np.floor((cx[i] - radii[i] - x0) * inv))
            cx_hi = np.int64(np.floor((cx[i] + radii[i] - x0) * inv))
            cy_lo = np.int64(np.floor((cy[i] - radii[i] - y0) * inv))
            cy_hi = np.int64(np.floor((cy[i] + radii[i] - y0) * inv))
            if cx_hi < 0 or cy_hi < 0 or cx_lo >= n_cols or cy_lo >= n_rows:
                continue
            cx_lo = max(cx_lo, 0)
            cy_lo = max(cy_lo, 0)
            cx_hi = min(cx_hi, n_cols - 1)
            cy_hi = min(cy_hi, n_rows - 1)
            for col in range(cx_lo, cx_hi + 1):
                base = col * n_rows
                lo = np.searchsorted(sorted_cids, base + cy_lo)
                hi = np.searchsorted(sorted_cids, base + cy_hi + 1)
                total_candidates += hi - lo
        out = np.empty(total_candidates, dtype=np.int64)
        offsets = np.zeros(n_centers + 1, dtype=np.int64)
        # Pass 2: exact disc filter + per-center ascending sort.
        pos = np.int64(0)
        for i in range(n_centers):
            row_start = pos
            cx_lo = np.int64(np.floor((cx[i] - radii[i] - x0) * inv))
            cx_hi = np.int64(np.floor((cx[i] + radii[i] - x0) * inv))
            cy_lo = np.int64(np.floor((cy[i] - radii[i] - y0) * inv))
            cy_hi = np.int64(np.floor((cy[i] + radii[i] - y0) * inv))
            if not (cx_hi < 0 or cy_hi < 0 or cx_lo >= n_cols or cy_lo >= n_rows):
                cx_lo = max(cx_lo, 0)
                cy_lo = max(cy_lo, 0)
                cx_hi = min(cx_hi, n_cols - 1)
                cy_hi = min(cy_hi, n_rows - 1)
                r_sq = radii[i] * radii[i]
                for col in range(cx_lo, cx_hi + 1):
                    base = col * n_rows
                    lo = np.searchsorted(sorted_cids, base + cy_lo)
                    hi = np.searchsorted(sorted_cids, base + cy_hi + 1)
                    for k in range(lo, hi):
                        idx = order[k]
                        dx = pxs[idx] - cx[i]
                        dy = pys[idx] - cy[i]
                        if dx * dx + dy * dy <= r_sq:
                            out[pos] = idx
                            pos += 1
            row = out[row_start:pos]
            row.sort()
            offsets[i + 1] = pos
        return out[:pos], offsets, total_candidates


class NumbaBackend(FastNumpyBackend):
    """JIT backend (``"numba"``): the fused likelihood as compiled loops.

    Inherits every float32 SoA kernel from :class:`FastNumpyBackend` and
    replaces the batched likelihood with a ``prange``-parallel compiled
    kernel.  Auto-detected: constructing it without numba installed
    raises :class:`BackendUnavailableError` (and ``get_backend`` surfaces
    that to the CLI as a clear error instead of an import crash).
    """

    name = "numba"

    def __init__(self) -> None:
        if not HAVE_NUMBA:
            raise BackendUnavailableError(
                "backend 'numba' requested but numba is not importable; "
                "install numba or use --backend fast"
            )
        super().__init__()

    def log_likelihood_batch(  # pragma: no cover - requires numba
        self,
        particles: "ParticleSet",
        sensor_x: np.ndarray,
        sensor_y: np.ndarray,
        counts: np.ndarray,
        efficiency: float = 1.0,
        background_cpm: float = 0.0,
        under_prediction_tempering: float = 1.0,
        interference_cpm: Optional[np.ndarray] = None,
        credibility_weights: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        scratch = self.scratch
        counts64 = np.asarray(counts, dtype=np.float64)
        n_delivered = len(counts64)
        xs32, ys32, st32 = self._position_mirrors(particles)
        out = scratch.get(
            "batch.out", (n_delivered, len(particles)), np.float32
        )
        log_gamma = gammaln(counts64 + 1.0)
        with np.errstate(divide="ignore", invalid="ignore"):
            at_count = np.where(
                counts64 > 0.0,
                counts64 * np.log(np.maximum(counts64, 1.0))
                - counts64
                - log_gamma,
                0.0,
            )
        ones = np.ones(n_delivered, dtype=np.float32)
        _numba_batch_log_likelihood(
            xs32,
            ys32,
            st32,
            np.asarray(sensor_x, dtype=np.float32),
            np.asarray(sensor_y, dtype=np.float32),
            np.asarray(counts64, dtype=np.float32),
            log_gamma.astype(np.float32),
            at_count.astype(np.float32),
            np.float32(CPM_PER_MICROCURIE * efficiency),
            np.float32(background_cpm),
            np.float32(under_prediction_tempering),
            (
                np.asarray(interference_cpm, dtype=np.float32)
                if interference_cpm is not None
                else np.zeros(n_delivered, dtype=np.float32)
            ),
            (
                np.asarray(credibility_weights, dtype=np.float32)
                if credibility_weights is not None
                else ones
            ),
            out,
        )
        return out

    def multi_disc_query(  # pragma: no cover - requires numba
        self,
        grid,
        xs: np.ndarray,
        ys: np.ndarray,
        radius,
        sort_rows: bool = True,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Compiled batched disc query: same CSR contract, typed loops.

        The float64 distance test matches the scalar path op-for-op, so
        rows stay bit-identical; the candidate walk and per-row sort run
        as compiled code instead of vectorized passes (sorted rows are a
        valid ``sort_rows=False`` answer, so the flag needs no branch).
        """
        centers_x = np.ascontiguousarray(xs, dtype=np.float64)
        centers_y = np.ascontiguousarray(ys, dtype=np.float64)
        radii = np.asarray(radius, dtype=np.float64)
        if radii.ndim == 0:
            radii = np.full(len(centers_x), float(radii))
        else:
            radii = np.ascontiguousarray(radii, dtype=np.float64)
        if np.any(radii < 0):
            raise ValueError("radius must be non-negative")
        indices, offsets, scanned = _numba_multi_disc_query(
            grid._sorted_cids,
            grid._order,
            grid.xs,
            grid.ys,
            centers_x,
            centers_y,
            radii,
            grid.x0,
            grid.y0,
            1.0 / grid.cell_size,
            grid.n_cols,
            grid.n_rows,
        )
        grid.queries += len(centers_x)
        grid.candidates_scanned += int(scanned)
        return indices, offsets
