"""Runtime diagnostics for the localizer.

Operational deployments need more than estimates: when has the filter
*converged*, is the population healthy, and how much of it backs each
reported source?  This module computes those signals from a localizer
without touching its state.

* :func:`population_health` -- ESS, spatial spread, strength statistics.
* :class:`ConvergenceMonitor` -- declares convergence when the estimate
  set has been stable (same cardinality, positions within a tolerance)
  for a configurable number of checks; this is the "when can the response
  team move" signal.
* :func:`cluster_report` -- per-estimate support: particle count, weight
  mass, and local strength inter-quartile range.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.core.estimator import SourceEstimate
from repro.core.localizer import MultiSourceLocalizer


@dataclass(frozen=True)
class PopulationHealth:
    """Summary statistics of the particle population."""

    n_particles: int
    effective_sample_size: float
    #: ESS / N in (0, 1]: near zero means weight degeneracy.
    ess_fraction: float
    #: RMS distance of particles from their mean position (spread).
    spatial_spread: float
    strength_median: float
    strength_iqr: float


def population_health(localizer: MultiSourceLocalizer) -> PopulationHealth:
    """Snapshot health metrics of the localizer's population."""
    particles = localizer.particles
    ess = particles.effective_sample_size()
    mean_x = float(particles.xs.mean())
    mean_y = float(particles.ys.mean())
    spread = float(
        np.sqrt(np.mean((particles.xs - mean_x) ** 2 + (particles.ys - mean_y) ** 2))
    )
    q25, q50, q75 = np.percentile(particles.strengths, [25, 50, 75])
    return PopulationHealth(
        n_particles=len(particles),
        effective_sample_size=ess,
        ess_fraction=ess / len(particles),
        spatial_spread=spread,
        strength_median=float(q50),
        strength_iqr=float(q75 - q25),
    )


@dataclass(frozen=True)
class ClusterSupport:
    """How much of the population backs one reported estimate."""

    estimate: SourceEstimate
    particle_count: int
    weight_mass: float
    strength_iqr: float


def cluster_report(
    localizer: MultiSourceLocalizer,
    estimates: Optional[Sequence[SourceEstimate]] = None,
    radius: Optional[float] = None,
) -> List[ClusterSupport]:
    """Per-estimate support statistics.

    ``radius`` defaults to the mean-shift bandwidth.  A confident report
    has a large particle count, a weight mass well above the uniform
    share, and a tight strength IQR.
    """
    if estimates is None:
        estimates = localizer.estimates()
    if radius is None:
        radius = localizer.config.bandwidth
    particles = localizer.particles
    total = particles.weights.sum()
    out: List[ClusterSupport] = []
    for estimate in estimates:
        # Served by the cached grid index when the hot path left a fresh
        # one behind (bit-identical to the brute-force scan either way).
        idx = particles.indices_within_cached(estimate.x, estimate.y, radius)
        mass = float(particles.weights[idx].sum() / total) if total > 0 else 0.0
        if len(idx) > 0:
            q25, q75 = np.percentile(particles.strengths[idx], [25, 75])
            iqr = float(q75 - q25)
        else:
            iqr = float("nan")
        out.append(
            ClusterSupport(
                estimate=estimate,
                particle_count=len(idx),
                weight_mass=mass,
                strength_iqr=iqr,
            )
        )
    return out


class ConvergenceMonitor:
    """Declares convergence from estimate-set stability.

    Feed it the estimate list after each time step; it reports converged
    once the set's cardinality is unchanged and every estimate moved less
    than ``position_tolerance`` since the previous check, for
    ``stable_checks`` consecutive checks.
    """

    def __init__(self, position_tolerance: float = 3.0, stable_checks: int = 3):
        if position_tolerance <= 0:
            raise ValueError(
                f"position tolerance must be positive, got {position_tolerance}"
            )
        if stable_checks < 1:
            raise ValueError(f"stable_checks must be >= 1, got {stable_checks}")
        self.position_tolerance = float(position_tolerance)
        self.stable_checks = stable_checks
        self._previous: Optional[List[SourceEstimate]] = None
        self._stable_count = 0
        #: Check index (0-based) at which convergence was first declared.
        self.converged_at: Optional[int] = None
        self._checks = 0

    def update(self, estimates: Sequence[SourceEstimate]) -> bool:
        """Record one check; returns True once converged."""
        estimates = list(estimates)
        stable = False
        if self._previous is not None and len(estimates) == len(self._previous):
            if len(estimates) == 0:
                # An empty set is only "stable" once sources were never
                # seen; do not declare convergence on nothing.
                stable = False
            else:
                moved = []
                remaining = list(self._previous)
                for estimate in estimates:
                    best = min(
                        remaining,
                        key=lambda p: p.distance_to(estimate.x, estimate.y),
                    )
                    moved.append(best.distance_to(estimate.x, estimate.y))
                    remaining.remove(best)
                stable = max(moved) < self.position_tolerance
        self._stable_count = self._stable_count + 1 if stable else 0
        self._previous = estimates
        if (
            self.converged_at is None
            and self._stable_count >= self.stable_checks
        ):
            self.converged_at = self._checks
        self._checks += 1
        return self.converged_at is not None

    @property
    def converged(self) -> bool:
        return self.converged_at is not None

    # --- checkpoint support ---------------------------------------------------

    def export_state(self) -> dict:
        """JSON-safe snapshot of the monitor, for checkpointing."""
        import dataclasses

        return {
            "position_tolerance": self.position_tolerance,
            "stable_checks": self.stable_checks,
            "previous": (
                None
                if self._previous is None
                else [dataclasses.asdict(e) for e in self._previous]
            ),
            "stable_count": self._stable_count,
            "converged_at": self.converged_at,
            "checks": self._checks,
        }

    @classmethod
    def from_state(cls, state: dict) -> "ConvergenceMonitor":
        """Rebuild a monitor from :meth:`export_state` output."""
        monitor = cls(
            position_tolerance=state["position_tolerance"],
            stable_checks=state["stable_checks"],
        )
        previous = state["previous"]
        if previous is not None:
            monitor._previous = [SourceEstimate(**e) for e in previous]
        monitor._stable_count = int(state["stable_count"])
        monitor.converged_at = state["converged_at"]
        monitor._checks = int(state["checks"])
        return monitor
