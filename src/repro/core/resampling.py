"""Selective resampling with jitter and random injection (Section V-E).

Only the particles touched by the current measurement (the fusion-range
subset ``P''``) are resampled; the rest of the population is untouched,
which is what lets per-source clusters persist independently.  Duplicated
particles receive zero-mean Gaussian position jitter (sigma_N) and a
log-normal strength jitter so the population never collapses to identical
points.  A small fraction of the resampled slots is replaced by fresh
uniform-random particles as the paper's provision for sources that appear
in previously written-off regions.
"""

from __future__ import annotations

from typing import NamedTuple, Optional, Tuple

import numpy as np

from repro.core.config import LocalizerConfig
from repro.core.particles import ParticleSet


class ResampleStats(NamedTuple):
    """What one :func:`resample_subset` call did (for instrumentation)."""

    #: Particles redrawn (the size of the resampled subset).
    n_resampled: int
    #: Resampled slots that were duplicates and received jitter.
    n_duplicates: int
    #: Slots replaced by fresh uniform-random particles.
    n_injected: int


#: The no-op result (empty subset).
NO_RESAMPLE = ResampleStats(0, 0, 0)


def systematic_resample_indices(
    weights: np.ndarray,
    n: int,
    rng: np.random.Generator,
    backend=None,
) -> np.ndarray:
    """Systematic (low-variance) resampling: n draws from ``weights``.

    Systematic resampling uses a single uniform offset and a stratified
    comb, giving lower Monte-Carlo variance than independent multinomial
    draws -- the standard choice in particle filtering.
    Falls back to uniform if the weights are degenerate.  An accelerated
    ``backend`` supplies the prefix-sum from reusable scratch (the comb
    itself stays float64 so the drawn indices stay exact).
    """
    weights = np.asarray(weights, dtype=float)
    total = weights.sum()
    if total <= 0 or not np.isfinite(total):
        return rng.integers(0, len(weights), size=n)
    if backend is not None and backend.accelerated:
        cumulative = backend.prefix_sum(weights, total)
    else:
        cumulative = np.cumsum(weights / total)
        cumulative[-1] = 1.0  # guard against floating-point undershoot
    comb = (rng.uniform() + np.arange(n)) / n
    return np.searchsorted(cumulative, comb)


def resample_subset(
    particles: ParticleSet,
    indices: np.ndarray,
    config: LocalizerConfig,
    rng: np.random.Generator,
    injection_center: Optional[Tuple[float, float]] = None,
    injection_radius: Optional[float] = None,
    backend=None,
) -> ResampleStats:
    """Resample the particles at ``indices`` in place.

    * Draws ``len(indices)`` replacements from the subset with probability
      proportional to weight (systematic resampling).
    * The first occurrence of each drawn particle keeps its exact
      parameters; duplicates get Gaussian position jitter (sigma_N) and
      log-normal strength jitter, per Gordon et al.'s roughening.
    * A ``config.injection_fraction`` share of the slots is replaced by
      fresh uniform-random particles -- over the whole area for
      ``injection_scope="global"``, or within the fusion disc (given by
      ``injection_center`` / ``injection_radius``) for ``"local"``.
    * Weights are reset uniformly: to the global mean for
      ``resample_weight_mode="reset"`` (default), or to an equal share of
      the subset's current mass for ``"preserve"``.

    Returns a :class:`ResampleStats` with the resample / jitter / injection
    counts of this call (callers that don't care can ignore it).
    """
    m = len(indices)
    if m == 0:
        return NO_RESAMPLE

    subset_weights = particles.weights[indices]
    subset_mass = float(subset_weights.sum())

    drawn = systematic_resample_indices(subset_weights, m, rng, backend=backend)
    source_idx = indices[drawn]

    new_xs = particles.xs[source_idx].copy()
    new_ys = particles.ys[source_idx].copy()
    new_strengths = particles.strengths[source_idx].copy()

    # Jitter duplicates: every appearance of a source particle after its
    # first is perturbed so clones do not collapse to a single point.
    first_occurrence = np.zeros(m, dtype=bool)
    _, first_positions = np.unique(drawn, return_index=True)
    first_occurrence[first_positions] = True
    dup = ~first_occurrence
    n_dup = int(dup.sum())
    if n_dup > 0:
        if config.resample_noise_sigma > 0:
            new_xs[dup] += rng.normal(0.0, config.resample_noise_sigma, size=n_dup)
            new_ys[dup] += rng.normal(0.0, config.resample_noise_sigma, size=n_dup)
        if config.strength_noise_rel > 0:
            new_strengths[dup] *= np.exp(
                rng.normal(0.0, config.strength_noise_rel, size=n_dup)
            )

    # Random injection for new-source detection.
    n_inject = int(round(config.injection_fraction * m))
    if n_inject > 0:
        slots = rng.choice(m, size=n_inject, replace=False)
        if config.injection_scope == "local" and injection_center is not None:
            radius = injection_radius if injection_radius is not None else config.fusion_range
            angles = rng.uniform(0.0, 2.0 * np.pi, size=n_inject)
            radii = radius * np.sqrt(rng.uniform(size=n_inject))
            new_xs[slots] = injection_center[0] + radii * np.cos(angles)
            new_ys[slots] = injection_center[1] + radii * np.sin(angles)
        else:
            new_xs[slots] = rng.uniform(0.0, config.area[0], size=n_inject)
            new_ys[slots] = rng.uniform(0.0, config.area[1], size=n_inject)
        if config.strength_init == "log":
            new_strengths[slots] = np.exp(
                rng.uniform(
                    np.log(config.strength_min),
                    np.log(config.strength_max),
                    size=n_inject,
                )
            )
        else:
            new_strengths[slots] = rng.uniform(
                config.strength_min, config.strength_max, size=n_inject
            )

    # Clamp into the physical domain.
    np.clip(new_xs, 0.0, config.area[0], out=new_xs)
    np.clip(new_ys, 0.0, config.area[1], out=new_ys)
    np.clip(new_strengths, config.strength_min, config.strength_max, out=new_strengths)

    particles.xs[indices] = new_xs
    particles.ys[indices] = new_ys
    particles.strengths[indices] = new_strengths

    if config.resample_weight_mode == "preserve" and subset_mass > 0:
        particles.weights[indices] = subset_mass / m
    else:
        particles.weights[indices] = 1.0 / len(particles)
    particles.mark_moved(indices=indices)
    return ResampleStats(n_resampled=m, n_duplicates=n_dup, n_injected=n_inject)
