"""The multiple-source localizer (Section V, Fig. 1).

One :class:`MultiSourceLocalizer` holds the shared particle population and
consumes measurements one at a time, in any order::

    localizer = MultiSourceLocalizer(config, rng=rng)
    for measurement in arrival_stream:
        localizer.observe(measurement)
    for estimate in localizer.estimates():
        print(estimate)

Each ``observe`` is one iteration of the paper's loop: fusion-range
selection, prediction, Poisson weighting, selective resampling.  Estimates
are computed on demand by mean-shift over the current population, so the
caller chooses the cadence (the simulation runner extracts estimates once
per time step; the runtime benchmark extracts every iteration to mirror
the paper's Table I accounting).
"""

from __future__ import annotations

import logging
from time import perf_counter
from typing import Callable, List, Optional, Sequence

import numpy as np

from repro.core.backend import get_backend
from repro.core.config import LocalizerConfig
from repro.core.estimator import SourceEstimate, extract_estimates
from repro.core.fusion import FixedFusionRange, FusionRangePolicy
from repro.core.integrity import SensorCredibility
from repro.core.parallel import MeanShiftPool
from repro.core.particles import ParticleSet
from repro.core.resampling import NO_RESAMPLE, resample_subset
from repro.core.weighting import reweight_in_place
from repro.obs.metrics import NULL_REGISTRY, MetricsRegistry
from repro.obs.trace import NULL_TRACER, Tracer
from repro.sensors.measurement import Measurement

logger = logging.getLogger(__name__)

#: Readings fused per batched likelihood pass.  Within a chunk every
#: weight row applies to the same population; resampling runs between
#: chunks so the filter keeps the sequential loop's intra-step annealing.
#: 8 keeps >90% of the batching win on the Table-1 cell while matching
#: the sequential loop's accuracy on the paper scenarios.
FUSED_CHUNK = 8

#: A movement model maps (xs, ys, strengths, rng) of the touched subset to
#: predicted arrays.  The paper's sources are static (identity model); the
#: hook exists for the moving-source extension.
MovementModel = Callable[
    [np.ndarray, np.ndarray, np.ndarray, np.random.Generator],
    tuple,
]


class MultiSourceLocalizer:
    """Particle filter + mean-shift localizer for an unknown number of sources."""

    def __init__(
        self,
        config: LocalizerConfig,
        fusion_policy: Optional[FusionRangePolicy] = None,
        rng: Optional[np.random.Generator] = None,
        movement_model: Optional[MovementModel] = None,
        particles: Optional[ParticleSet] = None,
        tracer: Optional[Tracer] = None,
        metrics: Optional[MetricsRegistry] = None,
    ):
        self.config = config
        #: Array backend for the hot kernels (config.backend; see
        #: repro.core.backend).  The default is the float64 reference and
        #: keeps every code path bitwise-identical; accelerated backends
        #: own scratch buffers that live as long as this localizer.
        self.backend = get_backend(config.backend)
        self.fusion_policy = (
            fusion_policy if fusion_policy is not None else FixedFusionRange(config.fusion_range)
        )
        self.rng = rng if rng is not None else np.random.default_rng()
        self.movement_model = movement_model
        if particles is not None:
            if len(particles) != config.n_particles:
                raise ValueError(
                    f"supplied particle set has {len(particles)} particles, "
                    f"config says {config.n_particles}"
                )
            self.particles = particles
        else:
            self.particles = ParticleSet.uniform_random(
                config.n_particles,
                config.area,
                (config.strength_min, config.strength_max),
                self.rng,
                strength_init=config.strength_init,
            )
        # Incremental grid maintenance budget (see ParticleSet.grid).
        self.particles.grid_incremental_threshold = (
            config.grid_incremental_threshold
        )
        #: Structured trace-event emitter; the default NULL_TRACER keeps
        #: the hot loop free of any instrumentation cost (no clock reads,
        #: no ESS computation) -- every instrumented block is gated on
        #: ``tracer.enabled``.
        self.tracer = tracer if tracer is not None else NULL_TRACER
        #: Aggregating metrics registry (counters / gauges / histograms);
        #: disabled by default for the same zero-overhead reason.
        self.metrics = metrics if metrics is not None else NULL_REGISTRY
        # Suppresses nested extract events while inside observe_reading
        # (the interference refresh runs mean-shift mid-iteration; its cost
        # is already accounted to the ``weight`` phase).
        self._in_observe = False
        self.iteration = 0
        #: Size of the touched subset in the most recent iteration.
        self.last_touched = 0
        # Cached (x, y, strength) of current estimates, used for
        # interference subtraction; refreshed every
        # config.interference_refresh iterations.
        self._interference_sources: np.ndarray = np.zeros((0, 3))
        self._interference_age = 0
        # Exponential moving average of each sensor's readings, keyed by
        # (x, y) -- used by the report-time echo filter.  Smoothing factor
        # 0.3 averages out Poisson noise over the last few rounds while
        # following a moving source within ~3 time steps.
        self._reading_ema: dict = {}
        self._ema_alpha = 0.3
        # Sensor-integrity layer (config.integrity_enabled): scores each
        # reading's surprise against the credibility reference estimates
        # (refreshed every config.integrity_refresh readings, like the
        # interference cache) and maps it to a likelihood weight --
        # 0 quarantines the sensor outright.  Off by default: the
        # reference refresh consumes filter RNG, so enabling it changes
        # the stream relative to a vanilla run.
        self.credibility: Optional[SensorCredibility] = (
            SensorCredibility(config, tracer=self.tracer, metrics=self.metrics)
            if config.integrity_enabled
            else None
        )
        self._credibility_sources: np.ndarray = np.zeros((0, 3))
        self._credibility_age = 0
        # Estimate cache: (particle revision, unfiltered candidates).  The
        # mean-shift extraction depends only on the population, so it is
        # reusable until the next mutation; the echo filter (which also
        # depends on the reading EMA) always re-runs on top.
        self._estimate_cache: Optional[tuple] = None
        # Persistent mean-shift worker pool (config.meanshift_workers > 1),
        # created lazily on the first extraction that can use it.
        self._pool: Optional[MeanShiftPool] = None
        # Grid instrumentation watermarks (metrics report deltas).
        self._grid_rebuilds_seen = 0
        self._grid_incremental_seen = 0
        self._grid_queries_seen = 0
        self._grid_candidates_seen = 0
        # Backend scratch-reuse watermark (same delta-flush pattern).
        self._backend_reuses_seen = 0

    # --- the per-measurement iteration -----------------------------------------

    def observe(self, measurement: Measurement) -> None:
        """Consume one measurement: select, predict, weight, resample."""
        self.observe_reading(
            measurement.x, measurement.y, measurement.cpm, measurement.sensor_id
        )

    def observe_reading(
        self,
        sensor_x: float,
        sensor_y: float,
        cpm: float,
        sensor_id: int = -1,
    ) -> None:
        """Like :meth:`observe` but from raw values (no Measurement object).

        With an enabled tracer, one ``iteration`` event is emitted per call
        carrying the touched-subset size, ESS before/after, resampling
        counts, and per-phase wall-clock seconds.  The instrumentation is
        gated on ``tracer.enabled`` so the default (null) path reads no
        clocks and computes no diagnostics.
        """
        if cpm < 0:
            raise ValueError(f"measurement CPM must be non-negative, got {cpm}")
        config = self.config
        tracer = self.tracer
        traced = tracer.enabled
        if self.backend.accelerated:
            self.backend.begin_step()
        if traced:
            # ESS before any clock read: diagnostics stay out of the
            # phase timings, so the phases sum to total_seconds exactly.
            ess_before = self.particles.effective_sample_size()
            phases: dict = {}
            t_start = t_prev = perf_counter()
        self._in_observe = True
        try:
            # Sensor integrity: score the reading before it touches anything.
            # A quarantined sensor's reading is dropped wholesale -- no echo
            # EMA update, no particle selection, no grid query, no reweight.
            credibility_weight = 1.0
            if self.credibility is not None:
                credibility_weight = self._assess_credibility(
                    sensor_id, sensor_x, sensor_y, cpm
                )
                if credibility_weight <= 0.0:
                    self._reading_ema.pop(
                        (round(sensor_x, 6), round(sensor_y, 6)), None
                    )
                    if self.metrics.enabled:
                        self.metrics.counter("integrity.skipped_readings").inc()
                    return

            fusion_range = self.fusion_policy.range_for(sensor_id, sensor_x, sensor_y)

            # Track a smoothed reading per sensor location for the echo filter.
            key = (round(sensor_x, 6), round(sensor_y, 6))
            previous = self._reading_ema.get(key)
            if previous is None:
                self._reading_ema[key] = cpm
            else:
                self._reading_ema[key] = (
                    self._ema_alpha * cpm + (1.0 - self._ema_alpha) * previous
                )

            # 1. Selection (Eq. 5): P' = particles within the fusion range.
            indices = self._indices_within(sensor_x, sensor_y, fusion_range)
            self.last_touched = len(indices)
            self.iteration += 1
            if traced:
                t_now = perf_counter()
                phases["select"] = t_now - t_prev
                t_prev = t_now
            if len(indices) == 0:
                # Nothing hypothesized near this sensor (its region was
                # written off); random injection elsewhere is what re-seeds
                # such areas.
                if traced:
                    self._emit_iteration(
                        sensor_id, sensor_x, sensor_y, cpm, fusion_range,
                        touched=0, ess_before=ess_before, ess_after=ess_before,
                        stats=NO_RESAMPLE, phases=phases,
                        total_seconds=t_prev - t_start,
                    )
                if self.metrics.enabled:
                    self.metrics.counter("localizer.iterations").inc()
                    self.metrics.counter("localizer.empty_subsets").inc()
                    self.metrics.histogram("localizer.touched").observe(0)
                    self._flush_grid_metrics()
                return

            # 2. Prediction: static sources -> identity, unless a movement
            # model was supplied.
            if self.movement_model is not None:
                xs, ys, strengths = self.movement_model(
                    self.particles.xs[indices],
                    self.particles.ys[indices],
                    self.particles.strengths[indices],
                    self.rng,
                )
                self.particles.xs[indices] = xs
                self.particles.ys[indices] = ys
                self.particles.strengths[indices] = strengths
                self.particles.clip_to_area(config.area, indices=indices)
            if traced:
                t_now = perf_counter()
                phases["predict"] = t_now - t_prev
                t_prev = t_now

            # 3. Weighting: Poisson likelihood of the reading under each
            # particle's single-source free-space hypothesis, plus the
            # predicted contribution of other known sources at this sensor.
            interference = self._interference_for(sensor_x, sensor_y, fusion_range)
            reweight_in_place(
                self.particles,
                indices,
                cpm,
                sensor_x,
                sensor_y,
                efficiency=config.assumed_efficiency,
                background_cpm=config.assumed_background_cpm,
                under_prediction_tempering=config.under_prediction_tempering,
                interference_cpm=interference,
                credibility_weight=credibility_weight,
                backend=self.backend,
            )
            self.particles.normalize()
            if traced:
                t_now = perf_counter()
                phases["weight"] = t_now - t_prev
                t_prev = t_now

            # 4. Selective resampling, confined to the inner part of the disc:
            # weighting locality (full fusion range) collects all evidence,
            # but redistribution stays near the sensor so a disc spanning two
            # source clusters cannot teleport one cluster onto the other.
            if np.isinf(fusion_range):
                resample_indices = indices
                resample_radius = None
            else:
                resample_radius = config.resample_range_fraction * fusion_range
                if resample_radius == fusion_range and self.movement_model is None:
                    # Static sources: nothing moved since selection, so the
                    # full-disc resample set is exactly the selection set.
                    resample_indices = indices
                else:
                    resample_indices = self._indices_within(
                        sensor_x, sensor_y, resample_radius
                    )
            stats = resample_subset(
                self.particles,
                resample_indices,
                config,
                self.rng,
                injection_center=(sensor_x, sensor_y),
                injection_radius=resample_radius,
                backend=self.backend,
            )
            self.particles.normalize()
            if traced:
                t_end = perf_counter()
                phases["resample"] = t_end - t_prev
                self._emit_iteration(
                    sensor_id, sensor_x, sensor_y, cpm, fusion_range,
                    touched=len(indices), ess_before=ess_before,
                    ess_after=self.particles.effective_sample_size(),
                    stats=stats, phases=phases, total_seconds=t_end - t_start,
                )
            if self.metrics.enabled:
                metrics = self.metrics
                metrics.counter("localizer.iterations").inc()
                metrics.counter("localizer.resampled_particles").inc(
                    stats.n_resampled
                )
                metrics.counter("localizer.injected_particles").inc(stats.n_injected)
                metrics.histogram("localizer.touched").observe(len(indices))
                metrics.gauge("localizer.ess").set(
                    self.particles.effective_sample_size()
                )
                self._flush_grid_metrics()
                self._flush_backend_metrics()
        finally:
            self._in_observe = False

    def observe_batch(self, measurements: Sequence[Measurement]) -> None:
        """Consume one step's delivered measurements, fused when possible.

        With an accelerated backend (and no movement model or tracing),
        the per-sensor weight-path loop collapses into batched fused
        likelihood passes of :data:`FUSED_CHUNK` readings each: within a
        chunk, admission (integrity scoring, quarantine drops, echo-EMA
        updates, fusion selection) runs per reading in delivery order,
        one backend call computes the chunk's likelihood matrix, every
        row is applied to the same un-mutated population it was computed
        on (the weight updates are multiplicative, so their order within
        the chunk is immaterial), and then each reading's region is
        selectively resampled in delivery order.  Resampling *between*
        chunks preserves the sequential loop's annealing behaviour --
        fusing a whole step into one chunk starves later readings of the
        particle diversity the intermediate resamples restore -- so
        accuracy stays in the same approximation class as the truncated
        mean-shift kernel, covered by the tolerance parity suite.

        Everything else (default backend, movement models, tracing, a
        batch of one) falls back to the exact sequential :meth:`observe`
        loop, which is bitwise-identical to calling it yourself.
        """
        measurements = list(measurements)
        if (
            not self.backend.accelerated
            or self.movement_model is not None
            or self.tracer.enabled
            or len(measurements) <= 1
        ):
            for measurement in measurements:
                self.observe(measurement)
            return
        for start in range(0, len(measurements), FUSED_CHUNK):
            self._observe_batch_fused(measurements[start:start + FUSED_CHUNK])

    def _observe_batch_fused(self, measurements: List[Measurement]) -> None:
        """The accelerated :meth:`observe_batch` body (backend-gated)."""
        config = self.config
        backend = self.backend
        metrics = self.metrics
        backend.begin_step()
        self._in_observe = True
        try:
            # Phase A -- admission, per reading in delivery order, against
            # the un-mutated step-start population.  Credibility, EMA and
            # fusion ranges resolve first; the fusion-range selections for
            # every surviving reading then go out as *one* batched disc
            # query instead of a scalar query per measurement.
            screened: List[tuple] = []
            for m in measurements:
                if m.cpm < 0:
                    raise ValueError(
                        f"measurement CPM must be non-negative, got {m.cpm}"
                    )
                credibility_weight = 1.0
                if self.credibility is not None:
                    credibility_weight = self._assess_credibility(
                        m.sensor_id, m.x, m.y, m.cpm
                    )
                    if credibility_weight <= 0.0:
                        self._reading_ema.pop((round(m.x, 6), round(m.y, 6)), None)
                        if metrics.enabled:
                            metrics.counter("integrity.skipped_readings").inc()
                        continue
                fusion_range = self.fusion_policy.range_for(m.sensor_id, m.x, m.y)
                key = (round(m.x, 6), round(m.y, 6))
                previous = self._reading_ema.get(key)
                if previous is None:
                    self._reading_ema[key] = m.cpm
                else:
                    self._reading_ema[key] = (
                        self._ema_alpha * m.cpm + (1.0 - self._ema_alpha) * previous
                    )
                screened.append((m, fusion_range, credibility_weight))

            selections = self._batched_selection(
                [entry[0] for entry in screened],
                [entry[1] for entry in screened],
            )
            admitted: List[tuple] = []
            for (m, fusion_range, credibility_weight), indices in zip(
                screened, selections
            ):
                self.last_touched = len(indices)
                self.iteration += 1
                if metrics.enabled:
                    metrics.counter("localizer.iterations").inc()
                    metrics.histogram("localizer.touched").observe(len(indices))
                if len(indices) == 0:
                    if metrics.enabled:
                        metrics.counter("localizer.empty_subsets").inc()
                    continue
                interference = self._interference_for(m.x, m.y, fusion_range)
                admitted.append(
                    (m, fusion_range, indices, interference, credibility_weight)
                )

            if admitted:
                # Phase B -- one fused likelihood pass over the whole batch.
                log_like = backend.log_likelihood_batch(
                    self.particles,
                    np.array([entry[0].x for entry in admitted]),
                    np.array([entry[0].y for entry in admitted]),
                    np.array([entry[0].cpm for entry in admitted]),
                    efficiency=config.assumed_efficiency,
                    background_cpm=config.assumed_background_cpm,
                    under_prediction_tempering=config.under_prediction_tempering,
                    interference_cpm=np.array(
                        [entry[3] for entry in admitted]
                    ),
                    credibility_weights=np.array(
                        [entry[4] for entry in admitted]
                    ),
                )
                if metrics.enabled:
                    metrics.histogram("backend.weight_update_batch_size").observe(
                        len(admitted)
                    )
                # Phase C -- apply every weight row against the same
                # un-mutated population the likelihood matrix was computed
                # on.  Interleaving resamples here would move particles out
                # from under the remaining precomputed rows.
                for row, (m, fusion_range, indices, _intf, _cred) in enumerate(
                    admitted
                ):
                    backend.apply_log_likelihood(
                        self.particles, indices, log_like[row]
                    )
                    self.particles.normalize()
                # Phase D -- resample each reading's region in delivery
                # order, re-querying membership against the now-current
                # population (earlier resamples move particles in and out).
                for m, fusion_range, indices, _intf, _cred in admitted:
                    if np.isinf(fusion_range):
                        resample_indices = np.arange(len(self.particles))
                        resample_radius = None
                    else:
                        resample_radius = (
                            config.resample_range_fraction * fusion_range
                        )
                        resample_indices = self._indices_within(
                            m.x, m.y, resample_radius
                        )
                    stats = resample_subset(
                        self.particles,
                        resample_indices,
                        config,
                        self.rng,
                        injection_center=(m.x, m.y),
                        injection_radius=resample_radius,
                        backend=backend,
                    )
                    self.particles.normalize()
                    if metrics.enabled:
                        metrics.counter("localizer.resampled_particles").inc(
                            stats.n_resampled
                        )
                        metrics.counter("localizer.injected_particles").inc(
                            stats.n_injected
                        )
            if metrics.enabled:
                metrics.gauge("localizer.ess").set(
                    self.particles.effective_sample_size()
                )
                self._flush_grid_metrics()
                self._flush_backend_metrics()
        finally:
            self._in_observe = False

    def _assess_credibility(
        self, sensor_id: int, sensor_x: float, sensor_y: float, cpm: float
    ) -> float:
        """Refresh the credibility reference if stale, then score the reading.

        The reference is the current estimate set, refreshed every
        ``config.integrity_refresh`` readings (an ``estimates()`` call per
        refresh, mirroring the interference cache's cadence).
        """
        config = self.config
        self._credibility_age += 1
        if (
            self._credibility_age >= config.integrity_refresh
            or (
                self._credibility_sources.shape[0] == 0
                and self._credibility_age == 1
            )
        ):
            self._credibility_sources = np.array(
                [[e.x, e.y, e.strength] for e in self.estimates()], dtype=float
            ).reshape(-1, 3)
            self._credibility_age = 0

        from repro.physics.units import CPM_PER_MICROCURIE

        return self.credibility.assess(
            sensor_id,
            sensor_x,
            sensor_y,
            cpm,
            self._credibility_sources,
            self._reading_ema,
            config.assumed_background_cpm,
            CPM_PER_MICROCURIE * config.assumed_efficiency,
        )

    def _indices_within(
        self, x: float, y: float, radius: float
    ) -> np.ndarray:
        """Disc selection via the grid index (when enabled) or brute force.

        Both paths return the same sorted index array; the grid one scans
        only the cells overlapping the disc (Eq. 5's cost bound).
        """
        particles = self.particles
        if np.isinf(radius):
            return np.arange(len(particles))
        if self.config.use_grid_index:
            return particles.indices_within_grid(
                x, y, radius, self.config.grid_cell()
            )
        return particles.indices_within(x, y, radius)

    def _batched_selection(
        self, measurements: Sequence[Measurement], ranges: Sequence[float]
    ) -> List[np.ndarray]:
        """Fusion-range selection for a whole chunk: one batched disc query.

        Each returned array equals the scalar :meth:`_indices_within` for
        that measurement (the batched kernel keeps the exact-disc,
        ascending contract).  Falls back to per-measurement queries when
        the grid or backend cannot batch, or any range is infinite (those
        select everything).  The batched rows are copied into a dedicated
        scratch buffer (``sel.flat``) so later batched queries -- the
        extraction's gathers run between selection and the weight apply --
        cannot clobber them.
        """
        if not measurements:
            return []
        radii = np.asarray(ranges, dtype=float)
        if (
            not self.config.use_grid_index
            or not self.backend.accelerated
            or len(measurements) < 2
            or not np.all(np.isfinite(radii))
        ):
            return [
                self._indices_within(m.x, m.y, float(r))
                for m, r in zip(measurements, radii)
            ]
        particles = self.particles
        grid = particles.grid(self.config.grid_cell())
        before = grid.candidates_scanned
        xs = np.array([m.x for m in measurements], dtype=float)
        ys = np.array([m.y for m in measurements], dtype=float)
        flat, offsets = self.backend.multi_disc_query(grid, xs, ys, radii)
        particles.grid_queries += len(xs)
        particles.grid_candidates += grid.candidates_scanned - before
        if self.metrics.enabled:
            self.metrics.histogram("backend.disc_query_batch_size").observe(
                len(xs)
            )
        total = int(offsets[-1])
        keep = self.backend.scratch.get("sel.flat", (total,), np.int64)
        np.copyto(keep, flat)
        return [keep[offsets[i]:offsets[i + 1]] for i in range(len(xs))]

    def _flush_grid_metrics(self) -> None:
        """Report grid activity since the last flush (metrics-gated)."""
        metrics = self.metrics
        particles = self.particles
        rebuilds = particles.grid_rebuilds - self._grid_rebuilds_seen
        if rebuilds:
            # localizer.grid_rebuilds predates incremental maintenance and
            # keeps its name; grid.full_rebuilds is the same count under
            # the new grid.* namespace, paired with grid.incremental_updates.
            metrics.counter("localizer.grid_rebuilds").inc(rebuilds)
            metrics.counter("grid.full_rebuilds").inc(rebuilds)
            self._grid_rebuilds_seen = particles.grid_rebuilds
        incremental = (
            particles.grid_incremental_updates - self._grid_incremental_seen
        )
        if incremental:
            metrics.counter("grid.incremental_updates").inc(incremental)
            self._grid_incremental_seen = particles.grid_incremental_updates
        queries = particles.grid_queries - self._grid_queries_seen
        if queries:
            candidates = particles.grid_candidates - self._grid_candidates_seen
            metrics.counter("localizer.grid_queries").inc(queries)
            # Fraction of the population examined per query, averaged over
            # the flushed batch: the grid's selectivity.
            metrics.histogram("localizer.grid_candidate_fraction").observe(
                candidates / (queries * len(particles))
            )
            self._grid_queries_seen = particles.grid_queries
            self._grid_candidates_seen = particles.grid_candidates

    def _flush_backend_metrics(self) -> None:
        """Report backend scratch activity since the last flush.

        ``backend.allocations_per_step`` must read 0 on a warmed-up weight
        path -- that gauge is the zero-allocation contract's witness (see
        docs/OBSERVABILITY.md).  Only accelerated backends own scratch, so
        the default path skips this entirely.
        """
        backend = self.backend
        if not backend.accelerated:
            return
        metrics = self.metrics
        pool = backend.scratch
        metrics.gauge("backend.allocations_per_step").set(
            pool.allocations_this_step
        )
        reuse_delta = pool.reuses - self._backend_reuses_seen
        if reuse_delta:
            metrics.counter("backend.scratch_reuse").inc(reuse_delta)
            self._backend_reuses_seen = pool.reuses

    def _emit_iteration(
        self,
        sensor_id: int,
        sensor_x: float,
        sensor_y: float,
        cpm: float,
        fusion_range: float,
        touched: int,
        ess_before: float,
        ess_after: float,
        stats,
        phases: dict,
        total_seconds: float,
    ) -> None:
        self.tracer.emit(
            "iteration",
            iteration=self.iteration,
            sensor_id=int(sensor_id),
            sensor_x=float(sensor_x),
            sensor_y=float(sensor_y),
            cpm=float(cpm),
            fusion_range=float(fusion_range),
            touched=int(touched),
            ess_before=float(ess_before),
            ess_after=float(ess_after),
            resampled=int(stats.n_resampled),
            duplicates=int(stats.n_duplicates),
            injected=int(stats.n_injected),
            phases=phases,
            total_seconds=float(total_seconds),
        )

    def _interference_for(
        self,
        sensor_x: float,
        sensor_y: float,
        fusion_range: float,
    ) -> float:
        """Expected CPM at this sensor from sources *outside* its disc.

        No particle in the fusion disc can hypothesize a source beyond the
        disc, yet such sources still raise the sensor's reading; without
        this correction that excess breeds phantom clusters in discs that
        "see" a strong source from 30-60 units away.  Sources inside the
        disc are never subtracted -- the particles themselves compete to
        explain them (with under-prediction tempering absorbing the
        superposition).  The estimate set is refreshed every
        ``config.interference_refresh`` iterations.
        """
        config = self.config
        if not config.interference_subtraction or np.isinf(fusion_range):
            return 0.0
        self._interference_age += 1
        if (
            self._interference_age >= config.interference_refresh
            or (self._interference_sources.shape[0] == 0 and self._interference_age == 1)
        ):
            self._interference_sources = np.array(
                [[e.x, e.y, e.strength] for e in self.estimates()], dtype=float
            ).reshape(-1, 3)
            self._interference_age = 0
        sources = self._interference_sources
        if sources.shape[0] == 0:
            return 0.0

        from repro.physics.units import CPM_PER_MICROCURIE

        dx = sources[:, 0] - sensor_x
        dy = sources[:, 1] - sensor_y
        dist_sq = dx * dx + dy * dy
        outside = dist_sq > fusion_range * fusion_range
        if not np.any(outside):
            return 0.0
        contribution = (
            CPM_PER_MICROCURIE
            * config.assumed_efficiency
            * sources[outside, 2]
            / (1.0 + dist_sq[outside])
        )
        return float(contribution.sum())

    # --- estimation -------------------------------------------------------------

    def estimates(self) -> List[SourceEstimate]:
        """Current source estimates via mean-shift (Section V-D).

        Returns one estimate per surviving density mode, after the
        explain-away echo filter; the length of the list is the
        algorithm's belief about the number of sources K.

        With ``config.estimate_cache`` (default), the mean-shift
        extraction is cached keyed on the particle revision: repeated
        calls on an unmutated population -- the interference refresh,
        per-step diagnostics, ``estimated_source_count()`` -- reuse the
        candidate set instead of re-running mean-shift.  The echo filter
        is recomputed every call (it also depends on the reading EMA).
        """
        config = self.config
        cached = self._estimate_cache
        revision = self.particles.revision
        if config.estimate_cache and cached is not None and cached[0] == revision:
            if self.metrics.enabled:
                self.metrics.counter("localizer.estimate_cache_hits").inc()
            return self._filter_echoes(cached[1])
        # The interference refresh calls estimates() from inside
        # observe_reading; suppress the nested extract event there so the
        # trace's phase accounting never counts the same wall-clock twice
        # (that extraction is already inside the iteration's weight phase).
        tracer = NULL_TRACER if self._in_observe else self.tracer
        candidates = extract_estimates(
            self.particles, self.config, self.rng, tracer=tracer,
            pool=self._meanshift_pool(), backend=self.backend,
        )
        if config.estimate_cache:
            self._estimate_cache = (revision, candidates)
        if self.metrics.enabled:
            self.metrics.counter("localizer.estimate_cache_misses").inc()
            self._flush_grid_metrics()
        return self._filter_echoes(candidates)

    def _meanshift_pool(self) -> Optional[MeanShiftPool]:
        """The persistent extraction pool (lazily built; None when serial)."""
        if self.config.meanshift_workers <= 1:
            return None
        if self._pool is None:
            self._pool = MeanShiftPool(self.config.meanshift_workers)
        return self._pool

    def close(self) -> None:
        """Release the worker pool, if one was ever started."""
        if self._pool is not None:
            self._pool.close()
            self._pool = None

    def __enter__(self) -> "MultiSourceLocalizer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _filter_echoes(
        self, candidates: List[SourceEstimate]
    ) -> List[SourceEstimate]:
        """Explain-away filter for phantom "echo" estimates.

        Sensors 30-60 units from a strong source read a genuine excess
        whose origin lies outside their fusion disc, which breeds phantom
        weak-source clusters there.  Those clusters are real density modes,
        so they survive mean-shift -- but their local sensor readings are
        fully accounted for by the *other* (stronger) estimates.  Greedily
        accept candidates in decreasing mass order; report a candidate only
        if some sensor near it still shows at least
        ``echo_residual_fraction`` of the candidate's own predicted excess
        after subtracting what the already-accepted estimates put there.
        """
        config = self.config
        if config.echo_residual_fraction <= 0 or not candidates or not self._reading_ema:
            return candidates

        from repro.physics.units import CPM_PER_MICROCURIE

        sensor_xy = np.array(list(self._reading_ema.keys()), dtype=float)
        readings = np.array(list(self._reading_ema.values()), dtype=float)
        observed_excess = np.maximum(readings - config.assumed_background_cpm, 0.0)
        scale = CPM_PER_MICROCURIE * config.assumed_efficiency
        radius = (
            config.echo_sensor_radius
            if config.echo_sensor_radius is not None
            else config.fusion_range
        )

        def predicted_excess(x: float, y: float, strength: float) -> np.ndarray:
            d_sq = (sensor_xy[:, 0] - x) ** 2 + (sensor_xy[:, 1] - y) ** 2
            return scale * strength / (1.0 + d_sq)

        # Absolute vouching floor: the unexplained excess must clear the
        # Poisson noise of the background, or a weak candidate's tiny
        # predicted excess would make any 1-2 count fluctuation look like
        # full support.
        noise_floor = config.echo_noise_sigmas * np.sqrt(
            max(config.assumed_background_cpm, 1.0)
        )

        accepted: List[SourceEstimate] = []
        explained = np.zeros(len(sensor_xy))
        for candidate in sorted(candidates, key=lambda e: e.mass, reverse=True):
            own = predicted_excess(candidate.x, candidate.y, candidate.strength)
            d_sq = (
                (sensor_xy[:, 0] - candidate.x) ** 2
                + (sensor_xy[:, 1] - candidate.y) ** 2
            )
            nearby = d_sq <= radius * radius
            if not np.any(nearby):
                # No sensor can vouch either way; report it (coverage gaps
                # should not silently hide sources).
                accepted.append(candidate)
                continue
            residual = observed_excess[nearby] - explained[nearby]
            # Unexplained fraction of each nearby sensor's excess.  An echo
            # has ~0 everywhere (stronger accepted estimates already
            # account for its signal); a true source shows ~1 at its own
            # sensors.  Normalizing by the *observed* excess (not the
            # candidate's own prediction) keeps the test meaningful when a
            # candidate sits almost on top of a sensor.
            support = residual / np.maximum(observed_excess[nearby], 1e-12)
            vouched = (support >= config.echo_residual_fraction) & (
                residual >= noise_floor
            )
            if bool(vouched.any()):
                accepted.append(candidate)
                explained = explained + own
        # Preserve the candidate order (by mass) for reporting stability.
        return accepted

    def estimated_source_count(self) -> int:
        """The learned K: how many sources the localizer currently believes in."""
        return len(self.estimates())

    # --- checkpoint support -----------------------------------------------------

    def export_state(self) -> dict:
        """Complete filter state for checkpointing.

        Returns ``{"meta": <JSON-safe dict>, "arrays": <name -> ndarray>}``.
        Everything a restored localizer needs to continue **bitwise
        identically** is captured: the particle arrays and revision
        counters, the RNG bit-generator state (so no reseeding), the
        interference and reading-EMA caches, and the revision-keyed
        estimate cache (dropping it would change *when* the next
        mean-shift extraction runs, and therefore the RNG stream).
        """
        import dataclasses

        particles = self.particles.export_state()
        arrays = {
            "xs": particles["xs"],
            "ys": particles["ys"],
            "strengths": particles["strengths"],
            "weights": particles["weights"],
            "interference_sources": self._interference_sources.copy(),
        }
        cache = None
        if self._estimate_cache is not None:
            cache = {
                "revision": self._estimate_cache[0],
                "candidates": [
                    dataclasses.asdict(e) for e in self._estimate_cache[1]
                ],
            }
        meta = {
            "iteration": self.iteration,
            "last_touched": self.last_touched,
            "particle_revision": particles["revision"],
            "particle_position_revision": particles["position_revision"],
            "interference_age": self._interference_age,
            # Insertion order is load-bearing: the echo filter builds its
            # sensor arrays straight from this dict's iteration order.
            "reading_ema": [
                [key[0], key[1], value] for key, value in self._reading_ema.items()
            ],
            "estimate_cache": cache,
            "rng_state": self.rng.bit_generator.state,
            # The backend that produced this state: a restore under a
            # different one cannot be bitwise-reproducible (the session
            # layer warns, or raises under --strict-backend).
            "backend": self.backend.describe(),
        }
        # Integrity state only when the layer is on: a vanilla localizer's
        # checkpoint document stays byte-for-byte what it always was.
        if self.credibility is not None:
            arrays["credibility_sources"] = self._credibility_sources.copy()
            meta["credibility_age"] = self._credibility_age
            meta["credibility"] = self.credibility.export_state()
        return {"meta": meta, "arrays": arrays}

    @classmethod
    def from_state(
        cls,
        config: LocalizerConfig,
        state: dict,
        fusion_policy: Optional[FusionRangePolicy] = None,
        movement_model: Optional[MovementModel] = None,
        tracer: Optional[Tracer] = None,
        metrics: Optional[MetricsRegistry] = None,
    ) -> "MultiSourceLocalizer":
        """Rebuild a localizer from :meth:`export_state` output."""
        meta = state["meta"]
        arrays = state["arrays"]
        particles = ParticleSet.from_state(
            {
                "xs": arrays["xs"],
                "ys": arrays["ys"],
                "strengths": arrays["strengths"],
                "weights": arrays["weights"],
                "revision": meta["particle_revision"],
                "position_revision": meta["particle_position_revision"],
            }
        )
        rng_state = meta["rng_state"]
        rng = np.random.default_rng()
        if rng.bit_generator.state["bit_generator"] != rng_state["bit_generator"]:
            raise ValueError(
                f"checkpointed RNG is {rng_state['bit_generator']!r}, this "
                f"runtime uses {rng.bit_generator.state['bit_generator']!r}"
            )
        rng.bit_generator.state = rng_state
        localizer = cls(
            config,
            fusion_policy=fusion_policy,
            rng=rng,
            movement_model=movement_model,
            particles=particles,
            tracer=tracer,
            metrics=metrics,
        )
        recorded = meta.get("backend")
        if recorded is not None and recorded.get("name") != localizer.backend.name:
            logger.warning(
                "checkpoint was written by backend %r (%s); restoring under "
                "%r (%s) -- resumed results will not be bitwise-reproducible",
                recorded.get("name"),
                recorded.get("dtype"),
                localizer.backend.name,
                localizer.backend.dtype,
            )
        localizer.iteration = int(meta["iteration"])
        localizer.last_touched = int(meta["last_touched"])
        localizer._interference_sources = np.asarray(
            arrays["interference_sources"], dtype=float
        ).reshape(-1, 3)
        localizer._interference_age = int(meta["interference_age"])
        localizer._reading_ema = {
            (row[0], row[1]): row[2] for row in meta["reading_ema"]
        }
        cache = meta.get("estimate_cache")
        if cache is not None:
            localizer._estimate_cache = (
                int(cache["revision"]),
                [SourceEstimate(**e) for e in cache["candidates"]],
            )
        credibility_state = meta.get("credibility")
        if credibility_state is not None and localizer.credibility is not None:
            localizer.credibility.load_state(credibility_state)
            localizer._credibility_age = int(meta.get("credibility_age", 0))
            if "credibility_sources" in arrays:
                localizer._credibility_sources = np.asarray(
                    arrays["credibility_sources"], dtype=float
                ).reshape(-1, 3)
        return localizer

    # --- diagnostics -----------------------------------------------------------

    def particle_snapshot(self) -> ParticleSet:
        """A defensive copy of the population (for plotting / inspection)."""
        return self.particles.copy()

    def effective_sample_size(self) -> float:
        return self.particles.effective_sample_size()

    def __repr__(self) -> str:
        return (
            f"MultiSourceLocalizer(iteration={self.iteration}, "
            f"particles={len(self.particles)}, "
            f"fusion={self.fusion_policy!r})"
        )
