"""Uniform spatial grid index over 2-D point sets.

The fusion-range selection (Eq. 5) and the estimator's disc queries are
all "points within ``radius`` of a center" questions.  Brute force scans
every particle per query; this index buckets the points into a uniform
grid once per population revision and answers each query by scanning only
the cells overlapping the disc's bounding box.  With cell size around
half the query radius that is a handful of cells -- per-query cost is
bounded by the local point density, not the population size, which is
exactly the cost structure Eq. 5 promises.

The index is CSR-style: one ``argsort`` of the flattened cell ids, after
which every cell is a contiguous slice of the sort order.  Cells sharing
a grid column are contiguous in id, so a query resolves one
``searchsorted`` pair per column instead of one per cell.

Exact queries (:meth:`query_disc`) apply the true distance test and sort
the surviving indices ascending, making the result *bit-identical* to the
brute-force ``ParticleSet.indices_within``.  Candidate queries
(:meth:`query_candidates`) skip both steps for callers -- like the
truncated mean-shift -- that only need a superset cheaply.
"""

from __future__ import annotations

from typing import Optional

import numpy as np


class SpatialGridIndex:
    """An immutable uniform-grid index over fixed point arrays.

    The index snapshots nothing: it keeps references to the coordinate
    arrays it was built from, so it is only valid while those arrays are
    unchanged.  :class:`~repro.core.particles.ParticleSet` owns the
    rebuild-on-revision logic.
    """

    __slots__ = (
        "xs", "ys", "cell_size", "x0", "y0", "n_cols", "n_rows",
        "_order", "_sorted_cids", "queries", "candidates_scanned",
    )

    def __init__(self, xs: np.ndarray, ys: np.ndarray, cell_size: float):
        if cell_size <= 0 or not np.isfinite(cell_size):
            raise ValueError(f"cell_size must be positive and finite, got {cell_size}")
        xs = np.asarray(xs, dtype=float)
        ys = np.asarray(ys, dtype=float)
        if len(xs) != len(ys):
            raise ValueError(f"coordinate length mismatch: {len(xs)} vs {len(ys)}")
        if len(xs) == 0:
            raise ValueError("cannot index an empty point set")
        self.xs = xs
        self.ys = ys
        self.cell_size = float(cell_size)
        inv = 1.0 / self.cell_size
        self.x0 = float(xs.min())
        self.y0 = float(ys.min())
        cx = np.floor((xs - self.x0) * inv).astype(np.int64)
        cy = np.floor((ys - self.y0) * inv).astype(np.int64)
        self.n_cols = int(cx.max()) + 1
        self.n_rows = int(cy.max()) + 1
        cids = cx * self.n_rows + cy
        # Stable sort keeps within-cell indices ascending, so per-cell
        # slices come out pre-sorted.
        self._order = np.argsort(cids, kind="stable")
        self._sorted_cids = cids[self._order]
        #: Query instrumentation (cheap int bumps; read by the localizer's
        #: metrics path, ignored otherwise).
        self.queries = 0
        self.candidates_scanned = 0

    def __len__(self) -> int:
        return len(self.xs)

    def query_candidates(self, x: float, y: float, radius: float) -> np.ndarray:
        """Indices whose *cells* overlap the disc's bounding box.

        A superset of the exact answer, unsorted; no distance test is
        applied.  Callers that evaluate a kernel over the result anyway
        (mean-shift) use this to skip the redundant filtering pass.
        """
        if radius < 0:
            raise ValueError(f"radius must be non-negative, got {radius}")
        inv = 1.0 / self.cell_size
        cx_lo = int(np.floor((x - radius - self.x0) * inv))
        cx_hi = int(np.floor((x + radius - self.x0) * inv))
        cy_lo = int(np.floor((y - radius - self.y0) * inv))
        cy_hi = int(np.floor((y + radius - self.y0) * inv))
        self.queries += 1
        if cx_hi < 0 or cy_hi < 0 or cx_lo >= self.n_cols or cy_lo >= self.n_rows:
            return np.empty(0, dtype=np.int64)
        cx_lo = max(cx_lo, 0)
        cy_lo = max(cy_lo, 0)
        cx_hi = min(cx_hi, self.n_cols - 1)
        cy_hi = min(cy_hi, self.n_rows - 1)
        sorted_cids = self._sorted_cids
        order = self._order
        slices = []
        # A fixed column's cy range is one contiguous cell-id interval.
        for cx in range(cx_lo, cx_hi + 1):
            base = cx * self.n_rows
            lo = np.searchsorted(sorted_cids, base + cy_lo, side="left")
            hi = np.searchsorted(sorted_cids, base + cy_hi, side="right")
            if hi > lo:
                slices.append(order[lo:hi])
        if not slices:
            return np.empty(0, dtype=np.int64)
        candidates = slices[0] if len(slices) == 1 else np.concatenate(slices)
        self.candidates_scanned += len(candidates)
        return candidates

    def query_candidates_many(
        self, xs: np.ndarray, ys: np.ndarray, radius: float
    ) -> list:
        """:meth:`query_candidates` for a batch of centers.

        Returns one candidate array per center.  Centralizing the batch
        here lets the accelerated mean-shift gather every seed's
        neighborhood in one call (and keeps the instrumentation counters
        consistent with the scalar path).
        """
        return [
            self.query_candidates(float(x), float(y), radius)
            for x, y in zip(xs, ys)
        ]

    def query_disc(
        self,
        x: float,
        y: float,
        radius: float,
        stats: Optional[dict] = None,
    ) -> np.ndarray:
        """Indices of points with ``(px-x)^2 + (py-y)^2 <= radius^2``.

        Sorted ascending: the result is array-equal to the brute-force
        scan, so fast-path selection stays bit-identical.  ``stats``, when
        given, receives ``candidates`` (points scanned) and ``selected``.
        """
        candidates = self.query_candidates(x, y, radius)
        if len(candidates) == 0:
            if stats is not None:
                stats["candidates"] = 0
                stats["selected"] = 0
            return candidates
        dx = self.xs[candidates] - x
        dy = self.ys[candidates] - y
        inside = candidates[dx * dx + dy * dy <= radius * radius]
        inside.sort()
        if stats is not None:
            stats["candidates"] = int(len(candidates))
            stats["selected"] = int(len(inside))
        return inside

    def __repr__(self) -> str:
        return (
            f"SpatialGridIndex(n={len(self)}, cell={self.cell_size:.2f}, "
            f"{self.n_cols}x{self.n_rows} cells)"
        )
