"""Uniform spatial grid index over 2-D point sets.

The fusion-range selection (Eq. 5) and the estimator's disc queries are
all "points within ``radius`` of a center" questions.  Brute force scans
every particle per query; this index buckets the points into a uniform
grid once per population revision and answers each query by scanning only
the cells overlapping the disc's bounding box.  With cell size around
half the query radius that is a handful of cells -- per-query cost is
bounded by the local point density, not the population size, which is
exactly the cost structure Eq. 5 promises.

The index is CSR-style: one ``argsort`` of the flattened cell ids, after
which every cell is a contiguous slice of the sort order.  Cells sharing
a grid column are contiguous in id, so a query resolves one
``searchsorted`` pair per column instead of one per cell.

Exact queries (:meth:`query_disc`, :meth:`query_disc_batch`) apply the
true distance test and sort the surviving indices ascending, making the
result *bit-identical* to the brute-force ``ParticleSet.indices_within``.
Candidate queries (:meth:`query_candidates`,
:meth:`query_candidates_batch`) skip both steps for callers -- like the
truncated mean-shift -- that only need a superset cheaply.

Two batching axes keep the hot path out of the Python interpreter:

* The batch queries answer *many centers at once*.  All (center, column)
  pairs are flattened into one key set, resolved by a single vectorized
  ``searchsorted`` pair, and gathered into a CSR ``(indices, offsets)``
  result whose row ``i`` is array-equal to the scalar query for center
  ``i``.
* :meth:`apply_moves` maintains the index *incrementally*: when only a
  subset of points moved (a selective resample), their rows are re-binned
  by a sorted merge into the existing CSR order instead of re-sorting the
  whole population.  The merged index is array-equal to a from-scratch
  rebuild whenever the grid geometry (origin and cell-span) is unchanged;
  otherwise ``apply_moves`` refuses and the owner falls back to a full
  rebuild.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

_INT64_MAX = np.iinfo(np.int64).max


def _buffer(pool, key: str, size: int, dtype) -> np.ndarray:
    """An exact-size scratch view from ``pool``, or a fresh array.

    ``pool`` is duck-typed on :meth:`ScratchPool.get` so the grid stays
    import-free of the backend layer; ``None`` (reference callers, tests)
    falls back to plain allocation.
    """
    if pool is None:
        return np.empty(size, dtype=dtype)
    return pool.get(key, (int(size),), dtype)


class SpatialGridIndex:
    """A maintainable uniform-grid index over point arrays.

    The index snapshots nothing: it keeps references to the coordinate
    arrays it was built from, so binning is only valid while those arrays
    are unchanged -- or until the owner re-bins moved rows through
    :meth:`apply_moves`.  :class:`~repro.core.particles.ParticleSet` owns
    the rebuild/maintain-on-revision logic.
    """

    __slots__ = (
        "xs", "ys", "cell_size", "x0", "y0", "n_cols", "n_rows",
        "_order", "_sorted_cids", "_cids", "_sorted_keys", "_xy_csr",
        "queries", "candidates_scanned",
    )

    def __init__(self, xs: np.ndarray, ys: np.ndarray, cell_size: float):
        if cell_size <= 0 or not np.isfinite(cell_size):
            raise ValueError(f"cell_size must be positive and finite, got {cell_size}")
        xs = np.asarray(xs, dtype=float)
        ys = np.asarray(ys, dtype=float)
        if len(xs) != len(ys):
            raise ValueError(f"coordinate length mismatch: {len(xs)} vs {len(ys)}")
        if len(xs) == 0:
            raise ValueError("cannot index an empty point set")
        self.xs = xs
        self.ys = ys
        self.cell_size = float(cell_size)
        inv = 1.0 / self.cell_size
        self.x0 = float(xs.min())
        self.y0 = float(ys.min())
        cx = np.floor((xs - self.x0) * inv).astype(np.int64)
        cy = np.floor((ys - self.y0) * inv).astype(np.int64)
        self.n_cols = int(cx.max()) + 1
        self.n_rows = int(cy.max()) + 1
        cids = cx * self.n_rows + cy
        # Stable sort keeps within-cell indices ascending, so per-cell
        # slices come out pre-sorted.
        self._order = np.argsort(cids, kind="stable")
        self._sorted_cids = cids[self._order]
        self._cids = cids
        # Composite merge keys: cid * n + index.  Sorting these plain keys
        # is exactly the stable sort by cid (ties broken by ascending
        # index), which is what lets apply_moves splice moved rows back in
        # with two searchsorteds instead of a full argsort.  Skipped when
        # the key range would overflow int64 (pathologically sparse grids)
        # -- apply_moves then refuses and the owner rebuilds.
        if self.n_cols * self.n_rows * len(xs) + len(xs) < _INT64_MAX:
            self._sorted_keys = self._sorted_cids * np.int64(len(xs)) + self._order
        else:  # pragma: no cover - needs a degenerate planet-sized extent
            self._sorted_keys = None
        # CSR-ordered packed coordinates for the batched distance test,
        # built lazily (see :meth:`_coords_csr`) and dropped whenever
        # :meth:`apply_moves` re-bins rows.
        self._xy_csr = None
        #: Query instrumentation (cheap int bumps; read by the localizer's
        #: metrics path, ignored otherwise).  Every query entry point bumps
        #: ``queries`` exactly once per center and ``candidates_scanned``
        #: by the number of candidate rows it touched -- including the
        #: empty and out-of-bounds exits, which contribute zero.
        self.queries = 0
        self.candidates_scanned = 0

    def __len__(self) -> int:
        return len(self.xs)

    # --- maintenance -----------------------------------------------------------

    def apply_moves(self, dirty: np.ndarray) -> bool:
        """Re-bin the rows in ``dirty`` (unique indices) via a sorted merge.

        Returns ``True`` when the index was updated in place and is
        array-equal to a from-scratch rebuild over the current coordinate
        arrays.  Returns ``False`` -- leaving the index untouched -- when
        the move cannot be expressed as an in-bounds re-bin: the
        population's bounding box or cell-grid shape changed, so only a
        full rebuild reproduces the constructor's origin and shape.
        """
        if self._sorted_keys is None:  # pragma: no cover - overflow guard
            return False
        dirty = np.asarray(dirty, dtype=np.int64)
        if len(dirty) == 0:
            return True
        xs = self.xs
        ys = self.ys
        n = len(xs)
        # The constructor derives origin and shape from the coordinates it
        # sees; the merge is only equivalent when those are unchanged.
        if float(xs.min()) != self.x0 or float(ys.min()) != self.y0:
            return False
        inv = 1.0 / self.cell_size
        if int(np.floor((xs.max() - self.x0) * inv)) != self.n_cols - 1:
            return False
        if int(np.floor((ys.max() - self.y0) * inv)) != self.n_rows - 1:
            return False
        # Origin and extent are intact, so every re-binned cell is in
        # range by construction.
        new_cx = np.floor((xs[dirty] - self.x0) * inv).astype(np.int64)
        new_cy = np.floor((ys[dirty] - self.y0) * inv).astype(np.int64)
        new_cids = new_cx * self.n_rows + new_cy
        old_keys = self._cids[dirty] * np.int64(n) + dirty
        new_keys = new_cids * np.int64(n) + dirty
        # Delete the dirty rows' old keys (exact matches by invariant),
        # then splice the re-binned keys into the survivors.
        at = np.searchsorted(self._sorted_keys, old_keys)
        keep = np.ones(n, dtype=bool)
        keep[at] = False
        kept = self._sorted_keys[keep]
        incoming = np.sort(new_keys)
        target = np.searchsorted(kept, incoming) + np.arange(len(incoming))
        merged = np.empty(n, dtype=np.int64)
        inserted = np.zeros(n, dtype=bool)
        inserted[target] = True
        merged[inserted] = incoming
        merged[~inserted] = kept
        self._sorted_keys = merged
        self._sorted_cids = merged // n
        self._order = merged % n
        self._cids[dirty] = new_cids
        self._xy_csr = None
        return True

    def _coords_csr(self) -> np.ndarray:
        """Packed ``xs + i*ys`` in CSR (sort) order, cached per revision.

        One complex gather replaces two float gathers in the batched
        distance test, and reading in CSR order keeps the access pattern
        piecewise-sequential.  Valid exactly as long as the binning is
        (the index keeps live references and is only coherent while the
        coordinate arrays are unchanged); :meth:`apply_moves` drops it.
        """
        if self._xy_csr is None:
            xy = np.empty(len(self.xs), dtype=np.complex128)
            xy.real = self.xs[self._order]
            xy.imag = self.ys[self._order]
            self._xy_csr = xy
        return self._xy_csr

    # --- scalar queries --------------------------------------------------------

    def _column_ranges(self, x: float, y: float, radius: float):
        """Clamped (cx_lo, cx_hi, cy_lo, cy_hi) or ``None`` off-grid."""
        if radius < 0:
            raise ValueError(f"radius must be non-negative, got {radius}")
        inv = 1.0 / self.cell_size
        cx_lo = int(np.floor((x - radius - self.x0) * inv))
        cx_hi = int(np.floor((x + radius - self.x0) * inv))
        cy_lo = int(np.floor((y - radius - self.y0) * inv))
        cy_hi = int(np.floor((y + radius - self.y0) * inv))
        if cx_hi < 0 or cy_hi < 0 or cx_lo >= self.n_cols or cy_lo >= self.n_rows:
            return None
        return (
            max(cx_lo, 0),
            min(cx_hi, self.n_cols - 1),
            max(cy_lo, 0),
            min(cy_hi, self.n_rows - 1),
        )

    def query_candidates(self, x: float, y: float, radius: float) -> np.ndarray:
        """Indices whose *cells* overlap the disc's bounding box.

        A superset of the exact answer, unsorted; no distance test is
        applied.  Callers that evaluate a kernel over the result anyway
        (mean-shift) use this to skip the redundant filtering pass.
        """
        self.queries += 1
        ranges = self._column_ranges(x, y, radius)
        if ranges is None:
            return np.empty(0, dtype=np.int64)
        cx_lo, cx_hi, cy_lo, cy_hi = ranges
        # A fixed column's cy range is one contiguous cell-id interval;
        # resolve every column's interval with one searchsorted pair.
        bases = np.arange(cx_lo, cx_hi + 1, dtype=np.int64) * self.n_rows
        lo = np.searchsorted(self._sorted_cids, bases + cy_lo, side="left")
        hi = np.searchsorted(self._sorted_cids, bases + cy_hi + 1, side="left")
        order = self._order
        slices = [order[l:h] for l, h in zip(lo, hi) if h > l]
        if not slices:
            return np.empty(0, dtype=np.int64)
        candidates = slices[0] if len(slices) == 1 else np.concatenate(slices)
        self.candidates_scanned += len(candidates)
        return candidates

    def query_candidates_many(
        self, xs: np.ndarray, ys: np.ndarray, radius: float
    ) -> list:
        """:meth:`query_candidates` for a batch of centers.

        Returns one candidate array per center -- a thin splitter over
        :meth:`query_candidates_batch`, so the arrays (contents *and*
        order) match the scalar path while the work happens in one
        vectorized pass.
        """
        indices, offsets = self.query_candidates_batch(xs, ys, radius)
        return [
            indices[offsets[i]:offsets[i + 1]] for i in range(len(offsets) - 1)
        ]

    def query_disc(
        self,
        x: float,
        y: float,
        radius: float,
        stats: Optional[dict] = None,
    ) -> np.ndarray:
        """Indices of points with ``(px-x)^2 + (py-y)^2 <= radius^2``.

        Sorted ascending: the result is array-equal to the brute-force
        scan, so fast-path selection stays bit-identical.  ``stats``, when
        given, receives ``candidates`` (points scanned) and ``selected``
        on every exit path, including empty and off-grid queries.
        """
        candidates = self.query_candidates(x, y, radius)
        if len(candidates) == 0:
            if stats is not None:
                stats["candidates"] = 0
                stats["selected"] = 0
            return candidates
        dx = self.xs[candidates] - x
        dy = self.ys[candidates] - y
        inside = candidates[dx * dx + dy * dy <= radius * radius]
        inside.sort()
        if stats is not None:
            stats["candidates"] = int(len(candidates))
            stats["selected"] = int(len(inside))
        return inside

    # --- batched queries -------------------------------------------------------

    def _batch_cell_ranges(self, xs, ys, radius):
        """Per-center clamped cell ranges plus the in-bounds mask."""
        centers_x = np.asarray(xs, dtype=float)
        centers_y = np.asarray(ys, dtype=float)
        radii = np.asarray(radius, dtype=float)
        if radii.ndim == 0:
            radii = np.broadcast_to(radii, centers_x.shape)
        if len(radii) != len(centers_x):
            raise ValueError(
                f"radius batch length {len(radii)} != centers {len(centers_x)}"
            )
        if np.any(radii < 0):
            raise ValueError("radius must be non-negative")
        inv = 1.0 / self.cell_size
        cx_lo = np.floor((centers_x - radii - self.x0) * inv).astype(np.int64)
        cx_hi = np.floor((centers_x + radii - self.x0) * inv).astype(np.int64)
        cy_lo = np.floor((centers_y - radii - self.y0) * inv).astype(np.int64)
        cy_hi = np.floor((centers_y + radii - self.y0) * inv).astype(np.int64)
        in_bounds = (
            (cx_hi >= 0)
            & (cy_hi >= 0)
            & (cx_lo < self.n_cols)
            & (cy_lo < self.n_rows)
        )
        np.maximum(cx_lo, 0, out=cx_lo)
        np.maximum(cy_lo, 0, out=cy_lo)
        np.minimum(cx_hi, self.n_cols - 1, out=cx_hi)
        np.minimum(cy_hi, self.n_rows - 1, out=cy_hi)
        return centers_x, centers_y, radii, cx_lo, cx_hi, cy_lo, cy_hi, in_bounds

    def query_candidates_batch(
        self,
        xs: np.ndarray,
        ys: np.ndarray,
        radius,
        pool=None,
    ):
        """Batched :meth:`query_candidates`: one CSR ``(indices, offsets)``.

        ``radius`` is a scalar or a per-center array.  Row ``i`` --
        ``indices[offsets[i]:offsets[i+1]]`` -- is array-equal (contents
        and order) to ``query_candidates(xs[i], ys[i], radius_i)``.  All
        (center, column) pairs are flattened into one key set and resolved
        by a single vectorized ``searchsorted`` pair; the gather walks the
        resulting segment list with one cumulative-sum pass instead of a
        Python loop.

        ``pool`` (duck-typed on ``ScratchPool.get``) backs the
        O(total-candidates) buffers so warm accelerated callers keep the
        zero-allocations contract; the small O(centers x columns)
        bookkeeping arrays are plain temporaries.
        """
        gather, offsets = self._candidate_positions(xs, ys, radius, pool=pool)
        total = len(gather)
        if total == 0:
            return np.empty(0, dtype=np.int64), offsets
        indices = _buffer(pool, "gq.cand", total, np.int64)
        np.take(self._order, gather, out=indices)
        return indices, offsets

    def _candidate_positions(self, xs, ys, radius, pool=None):
        """:meth:`query_candidates_batch` in CSR *positions*, not indices.

        Returns ``(gather, offsets)`` where ``self._order[gather]`` is the
        candidate index CSR.  The batched disc test works on positions
        directly (one packed-coordinate gather, see :meth:`_coords_csr`)
        and resolves positions to indices only for the survivors, so the
        shared scan lives here and the public wrapper adds one ``take``.
        Bumps ``queries``/``candidates_scanned`` exactly like the scalar
        path on every exit.
        """
        (
            _cx, _cy, _radii, cx_lo, cx_hi, cy_lo, cy_hi, in_bounds,
        ) = self._batch_cell_ranges(xs, ys, radius)
        n_centers = len(cx_lo)
        self.queries += n_centers
        offsets = np.zeros(n_centers + 1, dtype=np.int64)
        if n_centers == 0:
            return np.empty(0, dtype=np.int64), offsets
        span = np.where(in_bounds, cx_hi - cx_lo + 1, 0)
        total_cols = int(span.sum())
        if total_cols == 0:
            return np.empty(0, dtype=np.int64), offsets
        # Flattened (center, column) key set.
        col_center = np.repeat(np.arange(n_centers), span)
        col_first = np.zeros(n_centers, dtype=np.int64)
        np.cumsum(span[:-1], out=col_first[1:])
        col_cx = (
            np.arange(total_cols, dtype=np.int64)
            - np.repeat(col_first, span)
            + cx_lo[col_center]
        )
        bases = col_cx * self.n_rows
        seg_lo = np.searchsorted(self._sorted_cids, bases + cy_lo[col_center], side="left")
        seg_hi = np.searchsorted(
            self._sorted_cids, bases + cy_hi[col_center] + 1, side="left"
        )
        seg_len = seg_hi - seg_lo
        counts = np.bincount(
            col_center, weights=seg_len, minlength=n_centers
        ).astype(np.int64)
        np.cumsum(counts, out=offsets[1:])
        total = int(offsets[-1])
        self.candidates_scanned += total
        if total == 0:
            return np.empty(0, dtype=np.int64), offsets
        # Gather positions for every non-empty segment in one cumsum: fill
        # with ones, then scatter each segment boundary's jump so the
        # running sum lands on the next segment's start.
        live = seg_len > 0
        starts = seg_lo[live]
        lengths = seg_len[live]
        ends = np.cumsum(lengths)
        gather = _buffer(pool, "gq.gather", total, np.int64)
        gather.fill(1)
        gather[0] = starts[0]
        if len(starts) > 1:
            gather[ends[:-1]] = starts[1:] - (starts[:-1] + lengths[:-1] - 1)
        np.cumsum(gather, out=gather)
        return gather, offsets

    def query_disc_batch(
        self,
        xs: np.ndarray,
        ys: np.ndarray,
        radius,
        pool=None,
        stats: Optional[dict] = None,
        sort_rows: bool = True,
    ):
        """Batched :meth:`query_disc`: CSR rows bit-identical to the scalar loop.

        Row ``i`` is array-equal to ``query_disc(xs[i], ys[i], radius_i)``
        -- exact float64 distance test, ascending order -- so batched
        selection keeps the brute-force contract.  ``stats`` receives the
        aggregate ``candidates``/``selected`` totals on every exit path.

        ``sort_rows=False`` keeps each row in candidate (cell-major)
        order instead of ascending: same exact-disc *contents*, minus the
        global key sort.  Kernel-gather callers (the mean-shift rows)
        reduce over the row anyway, so they skip the sort -- it is the
        single most expensive pass for large batches.
        """
        centers_x = np.asarray(xs, dtype=float)
        centers_y = np.asarray(ys, dtype=float)
        radii = np.asarray(radius, dtype=float)
        scalar_radius = radii.ndim == 0
        if scalar_radius:
            radii = np.broadcast_to(radii, centers_x.shape)
        gather, cand_offsets = self._candidate_positions(
            centers_x, centers_y, radii, pool=pool
        )
        n_centers = len(cand_offsets) - 1
        total = len(gather)
        if total == 0:
            if stats is not None:
                stats["candidates"] = 0
                stats["selected"] = 0
            return np.empty(0, dtype=np.int64), cand_offsets
        # Center id per candidate row: scatter a mark at each interior
        # segment boundary (duplicates accumulate for empty centers), then
        # integrate.  The scatter is O(centers), the integral O(total).
        center_of = _buffer(pool, "gq.cid", total, np.int64)
        center_of.fill(0)
        boundaries = cand_offsets[1:-1]
        np.add.at(center_of, boundaries[boundaries < total], 1)
        np.cumsum(center_of, out=center_of)
        # Exact float64 distance test, identical op-for-op to the scalar
        # query_disc: the packed complex subtract is two float64
        # subtractions, ``v*v`` squares each component, and the strided
        # add is dx*dx + dy*dy in the scalar operand order -- so the
        # inside set stays bit-identical while the candidate gather is
        # one (CSR-sequential) pass instead of two random ones.
        d = _buffer(pool, "gq.d", total, np.complex128)
        np.take(self._coords_csr(), gather, out=d)
        centers = _buffer(pool, "gq.cc", n_centers, np.complex128)
        centers.real = centers_x
        centers.imag = centers_y
        dc = _buffer(pool, "gq.dc", total, np.complex128)
        np.take(centers, center_of, out=dc)
        np.subtract(d, dc, out=d)
        v = d.view(np.float64)
        np.multiply(v, v, out=v)
        dist_sq = _buffer(pool, "gq.dist", total, np.float64)
        np.add(v[0::2], v[1::2], out=dist_sq)
        inside = _buffer(pool, "gq.mask", total, np.bool_)
        if scalar_radius:
            # One scalar threshold: no per-candidate radius gather.
            threshold = float(radii[0]) * float(radii[0])
            np.less_equal(dist_sq, threshold, out=inside)
        else:
            radius_sq = radii * radii
            row_radius_sq = dc.view(np.float64)[:total]
            np.take(radius_sq, center_of, out=row_radius_sq)
            np.less_equal(dist_sq, row_radius_sq, out=inside)
        n_selected = int(np.count_nonzero(inside))
        if stats is not None:
            stats["candidates"] = total
            stats["selected"] = n_selected
        offsets = np.zeros(n_centers + 1, dtype=np.int64)
        if n_selected == 0:
            return np.empty(0, dtype=np.int64), offsets
        # Survivor-side bookkeeping: compress positions and center ids
        # down to the selected set, then resolve positions to indices and
        # build offsets at O(selected) instead of O(total).
        surv_pos = _buffer(pool, "gq.spos", n_selected, np.int64)
        np.compress(inside, gather, out=surv_pos)
        surv_center = _buffer(pool, "gq.scid", n_selected, np.int64)
        np.compress(inside, center_of, out=surv_center)
        np.cumsum(
            np.bincount(surv_center, minlength=n_centers), out=offsets[1:]
        )
        out = _buffer(pool, "gq.out", n_selected, np.int64)
        np.take(self._order, surv_pos, out=out)
        if not sort_rows:
            # The candidate flat order is already center-major, so the
            # compressed survivors stay aligned with ``offsets``.
            return out, offsets
        # One global sort of composite (center, index) keys groups the
        # survivors center-major with each row ascending -- the same order
        # a per-center query_disc loop would produce.
        n = np.int64(len(self.xs))
        keys = _buffer(pool, "gq.keys", n_selected, np.int64)
        np.multiply(surv_center, n, out=keys)
        np.add(keys, out, out=keys)
        keys.sort()
        np.mod(keys, n, out=out)
        return out, offsets

    def __repr__(self) -> str:
        return (
            f"SpatialGridIndex(n={len(self)}, cell={self.cell_size:.2f}, "
            f"{self.n_cols}x{self.n_rows} cells)"
        )
