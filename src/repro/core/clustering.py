"""Mode merging: converged mean-shift seeds -> distinct source candidates.

Many seeds converge to (numerically) the same optimum; the paper "merges
all the results that converge to the same x*".  We greedily absorb modes in
density order: the densest mode claims every other mode within the merge
radius.  The surviving modes, with their attracted seed counts and density
scores, are the source candidates handed to the estimator.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np


@dataclass(frozen=True)
class Mode:
    """A distinct local maximum of the particle density."""

    x: float
    y: float
    #: Normalized weighted kernel density at the mode (the mass score used
    #: for thresholding spurious modes).
    density: float
    #: Number of mean-shift seeds that converged into this mode; a broad,
    #: well-supported basin attracts many seeds.
    seed_count: int

    @property
    def position(self) -> np.ndarray:
        return np.array([self.x, self.y])


def merge_modes(
    locations: np.ndarray,
    densities: np.ndarray,
    merge_radius: float,
) -> List[Mode]:
    """Collapse converged seed locations into distinct modes.

    Parameters
    ----------
    locations : (S, 2) converged mean-shift locations.
    densities : (S,) density score at each location.
    merge_radius : two locations within this distance are the same mode.

    Returns modes sorted by descending density.
    """
    locations = np.atleast_2d(np.asarray(locations, dtype=float))
    densities = np.asarray(densities, dtype=float)
    if locations.shape[0] != densities.shape[0]:
        raise ValueError(
            f"locations ({locations.shape[0]}) and densities "
            f"({densities.shape[0]}) disagree"
        )

    order = np.argsort(densities)[::-1]
    taken = np.zeros(len(locations), dtype=bool)
    modes: List[Mode] = []
    for idx in order:
        if taken[idx]:
            continue
        center = locations[idx]
        diff = locations - center
        members = (np.einsum("ij,ij->i", diff, diff) <= merge_radius * merge_radius) & ~taken
        taken |= members
        modes.append(
            Mode(
                x=float(center[0]),
                y=float(center[1]),
                density=float(densities[idx]),
                seed_count=int(members.sum()),
            )
        )
    return modes
