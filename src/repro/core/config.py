"""Localizer configuration.

All tunables of the algorithm live here, with the paper's evaluation
defaults.  The dataclass validates itself on construction so that a bad
sweep value fails loudly at setup time rather than as a numerics mystery
mid-run.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Tuple


@dataclass(frozen=True)
class LocalizerConfig:
    """Tunable parameters of the particle-filter + mean-shift localizer.

    Defaults follow Section VI of the paper where stated (sigma_N = 3.0,
    ~5 % random injection, 3000 particles at Scenario-A scale) and this
    reproduction's calibrations elsewhere (fusion range 24, likelihood
    tempering 0.25, local injection -- see DESIGN.md section 5 for why
    each deviates from a literal reading of the paper).
    """

    # --- particle population -------------------------------------------------
    n_particles: int = 3000
    #: Strength hypothesis range (uCi); the paper's sources span 4-1000.
    strength_min: float = 1.0
    strength_max: float = 1000.0
    #: "log" draws initial strengths log-uniformly (sane for a 3-decade
    #: range); "uniform" matches a literal reading of the paper.
    strength_init: str = "log"

    # --- fusion range ---------------------------------------------------------
    #: Fusion range d_i (length units).  The paper quotes 28 for its
    #: 20-spaced grid; with this reproduction's sensor-efficiency
    #: calibration the accuracy/robustness optimum sits at 24 (the
    #: fusion-range ablation benchmark sweeps the trade-off: small d
    #: misses sources, large d lets a disc spanning two clusters feed one
    #: cluster to the other).  Ignored if the localizer is given an
    #: explicit policy.
    fusion_range: float = 24.0

    # --- weighting -------------------------------------------------------------
    #: Background rate (CPM) the localizer *assumes* at every sensor.  The
    #: paper calibrates sensors, so this matches the simulated background
    #: unless a robustness experiment deliberately mis-specifies it.
    assumed_background_cpm: float = 5.0
    #: Assumed sensor counting efficiency E_i.
    assumed_efficiency: float = 1.0
    #: Asymmetric-likelihood knob in [0, 1] (see
    #: :func:`repro.core.weighting.tempered_poisson_log_likelihood`):
    #: under-prediction of a reading -- explainable by *other* sources --
    #: is penalized at this fraction of the full Poisson log-likelihood.
    #: 1.0 is the symmetric (single-source-naive) likelihood, under which
    #: the strongest source's cluster slowly absorbs the population.
    under_prediction_tempering: float = 0.25
    #: When True, each particle's expected rate additionally includes the
    #: predicted contribution of current source estimates *outside the
    #: reporting sensor's fusion disc*.  Ablation option: it reduces echo
    #: false positives but the hard inclusion boundary erodes genuine
    #: clusters near it, so the default FP control is the report-time
    #: echo filter below instead.
    interference_subtraction: bool = False
    #: Refresh cadence (iterations) of the estimate set used for
    #: interference subtraction; estimation costs a mean-shift pass, so it
    #: is not recomputed on every measurement.
    interference_refresh: int = 25
    #: Report-time explain-away filter: a candidate estimate is reported
    #: only if, at one of the sensors near it, at least this fraction of
    #: its own predicted excess is *not* already explained by stronger
    #: accepted estimates.  Sensors 30-60 units from a strong source read
    #: a real excess whose origin lies outside their fusion disc; that
    #: excess breeds phantom "echo" clusters, and this filter is what
    #: keeps them out of the reported estimates.  Set to 0 to disable.
    echo_residual_fraction: float = 0.35
    #: Radius around a candidate within which sensors vouch for it; None
    #: uses the fusion range.
    echo_sensor_radius: float | None = None
    #: The vouching sensor's unexplained excess must also exceed this many
    #: Poisson standard deviations of the assumed background.  Without an
    #: absolute floor, a weak candidate's tiny predicted excess makes any
    #: 1-2 count background fluctuation look like full support, letting
    #: low-strength corner ghosts flicker into the reports.
    echo_noise_sigmas: float = 2.0

    # --- resampling -------------------------------------------------------------
    #: Std-dev of the zero-mean Gaussian position jitter on duplicated
    #: particles (the paper's sigma_N).
    resample_noise_sigma: float = 3.0
    #: Relative log-normal jitter applied to duplicated strengths.
    strength_noise_rel: float = 0.15
    #: Fraction of resampled slots replaced by fresh random particles
    #: (the paper's ~5 % provision for new sources).
    injection_fraction: float = 0.05
    #: Resampling can be confined to particles within
    #: ``resample_range_fraction * d_i`` of the reporting sensor while
    #: weighting uses the full fusion range.  1.0 (default) resamples the
    #: whole disc, per the paper; fractions below 1 are an ablation knob
    #: (they slow cross-cluster particle theft but let unresampled
    #: annulus weights accumulate, destabilizing the density estimates).
    resample_range_fraction: float = 1.0
    #: "local" injects fresh particles within the reporting sensor's
    #: fusion disc; "global" injects anywhere in the area (a literal
    #: reading of the paper).  Local is the default because global
    #: injection drains particle mass from regions covered by many sensor
    #: discs toward the dominant source (each disc resample leaks its
    #: injection fraction), starving subordinate clusters.  New-source
    #: detection is preserved: every point of a covered area lies in some
    #: sensor's disc, so fresh hypotheses still reach it.
    injection_scope: str = "local"
    #: "reset" restores the touched subset's weight mass to the global mean
    #: after resampling (density carries the memory; supports many sources);
    #: "preserve" keeps the subset's likelihood-deflated mass (ablation).
    resample_weight_mode: str = "reset"

    # --- mean-shift estimation ---------------------------------------------------
    #: Gaussian kernel bandwidth (length units) for position mean-shift.
    bandwidth: float = 8.0
    #: Number of mean-shift seed points (drawn from the particles).
    meanshift_seeds: int = 96
    #: Convergence tolerance (length units) and iteration cap.
    meanshift_tol: float = 1e-2
    meanshift_max_iter: int = 100
    #: Modes closer than this are merged into one estimate.
    mode_merge_radius: float = 6.0
    #: A mode counts as a source only if the particle weight within 2x the
    #: bandwidth of it exceeds this multiple of what a *uniform* particle
    #: spread would put there.  Scale-free across area sizes: 1.0 means
    #: "no denser than noise", higher demands a real cluster.  The mass is
    #: measured over one bandwidth around the mode, where converged
    #: clusters sit an order of magnitude above the uniform baseline, so
    #: 2.0 passes even weak-source clusters while rejecting noise bumps.
    mode_mass_ratio: float = 2.0
    #: Estimates whose strength hypothesis falls below this (uCi) are
    #: treated as background artifacts and dropped.
    min_estimate_strength: float = 1.5

    # --- sensor integrity --------------------------------------------------------
    # Credibility scoring and quarantine for suspect sensors (spoofed /
    # stuck / drifting counts); see repro.core.integrity and
    # docs/ROBUSTNESS.md.  Disabled by default: scoring consults
    # ``estimates()`` mid-iteration, which consumes filter RNG, so
    # enabling it changes the RNG stream (fault-free *results* stay
    # statistically equivalent, but not bitwise).
    #: Master switch for the SensorCredibility layer.
    integrity_enabled: bool = False
    #: Surprise EMA (in Poisson sigmas) above which an active sensor's
    #: likelihood is tempered below full strength.
    integrity_soft_sigma: float = 4.0
    #: Surprise EMA at which a sensor is quarantined outright (its
    #: readings are skipped entirely until re-admission).
    integrity_hard_sigma: float = 8.0
    #: Smoothing factor of the per-sensor surprise EMA; higher reacts
    #: faster to an attack, lower rides out honest Poisson flukes.
    integrity_ema_alpha: float = 0.25
    #: Readings per sensor before the state machine may act -- early
    #: estimates are too unsettled to call anything surprising.
    integrity_min_observations: int = 5
    #: Calm readings required in probation before full re-admission.
    integrity_probation_readings: int = 8
    #: Credibility weight applied to a probation sensor's likelihood.
    integrity_probation_weight: float = 0.5
    #: Floor of the active-sensor down-weighting ramp (soft -> hard sigma
    #: maps weight 1.0 -> this).
    integrity_min_weight: float = 0.1
    #: Leave-local-out radius: estimates within this distance of the
    #: scored sensor are excluded from its predicted rate, so a phantom
    #: estimate bred by a spoofed sensor cannot vouch for the spoof.
    integrity_exclusion_radius: float = 12.0
    #: Refresh cadence (readings) of the estimate set used as the
    #: credibility reference (an estimates() call per refresh).
    integrity_refresh: int = 25

    # --- compute fast path -------------------------------------------------------
    # Every knob below selects between a reference implementation and an
    # accelerated one; the defaults enable the fast paths.  Grid selection
    # and estimate caching are *exact* (bit-identical results); kernel
    # truncation is a tight approximation gated on population size.  See
    # docs/PERFORMANCE.md.
    #: Route fusion-range selection and the estimator's disc queries
    #: through the uniform spatial grid index instead of brute-force
    #: scans.  Exact: the selected index sets are identical.
    use_grid_index: bool = True
    #: Grid cell size (length units); None derives ``fusion_range / 2``,
    #: which keeps a fusion-disc query within a handful of cells.
    grid_cell_size: float | None = None
    #: Incremental grid maintenance threshold: when a position mutation
    #: declares its touched rows (selective resample, bounded move) and
    #: the dirty fraction is at most this, the index is re-binned by a
    #: sorted merge instead of rebuilt from scratch.  Exact either way
    #: (the maintained index is array-equal to a rebuild); 0 disables
    #: incremental maintenance.
    grid_incremental_threshold: float = 0.25
    #: Cache the mean-shift extraction keyed on the particle revision, so
    #: repeated ``estimates()`` calls on an unmutated population (the
    #: interference refresh, per-step diagnostics) reuse the result.
    estimate_cache: bool = True
    #: Truncate the mean-shift Gaussian kernel at this many bandwidths:
    #: each ascent step gathers only grid-local particles instead of the
    #: full population.  At 4 sigma the discarded kernel mass is < 3.4e-4
    #: relative, so modes match the dense sweep to well under the merge
    #: radius.  0 disables truncation (always dense).
    meanshift_truncation_sigmas: float = 4.0
    #: Populations smaller than this use the dense mean-shift even when
    #: truncation is enabled (the gather bookkeeping only pays off once
    #: the kernel matrix is large).
    meanshift_truncation_min_particles: int = 4096
    #: Peak-memory bound for the truncated path: active seeds are
    #: processed in tiles of at most this many gathered candidate points.
    meanshift_tile_candidates: int = 200_000
    #: Worker processes for mean-shift extraction.  1 runs in-process;
    #: > 1 shards seeds across a persistent, lazily-built pool owned by
    #: the localizer (exact: workers run the dense reference kernel).
    meanshift_workers: int = 1
    #: Array backend for the hot kernels (see repro.core.backend):
    #: "default" (float64 reference, bitwise parity), "fast" (float32 SoA
    #: scratch-buffer kernels, tolerance parity), or "numba" (JIT, needs
    #: numba installed).  None consults the REPRO_BACKEND environment
    #: variable and falls back to "default"; the CLI --backend flag
    #: overwrites this field.
    backend: str | None = None

    # --- area ----------------------------------------------------------------
    #: Surveillance area (width, height); particles live in [0,w] x [0,h].
    area: Tuple[float, float] = (100.0, 100.0)

    def __post_init__(self) -> None:
        if self.n_particles < 1:
            raise ValueError(f"n_particles must be >= 1, got {self.n_particles}")
        if not (0 < self.strength_min <= self.strength_max):
            raise ValueError(
                f"need 0 < strength_min <= strength_max, got "
                f"[{self.strength_min}, {self.strength_max}]"
            )
        if self.strength_init not in ("log", "uniform"):
            raise ValueError(f"strength_init must be 'log' or 'uniform', got {self.strength_init!r}")
        if self.fusion_range <= 0:
            raise ValueError(f"fusion_range must be positive, got {self.fusion_range}")
        if self.assumed_background_cpm < 0:
            raise ValueError(
                f"assumed_background_cpm must be non-negative, got {self.assumed_background_cpm}"
            )
        if self.assumed_efficiency <= 0:
            raise ValueError(
                f"assumed_efficiency must be positive, got {self.assumed_efficiency}"
            )
        if not 0.0 <= self.under_prediction_tempering <= 1.0:
            raise ValueError(
                f"under_prediction_tempering must be in [0, 1], "
                f"got {self.under_prediction_tempering}"
            )
        if self.interference_refresh < 1:
            raise ValueError(
                f"interference_refresh must be >= 1, got {self.interference_refresh}"
            )
        if not 0.0 <= self.echo_residual_fraction <= 1.0:
            raise ValueError(
                f"echo_residual_fraction must be in [0, 1], "
                f"got {self.echo_residual_fraction}"
            )
        if self.echo_sensor_radius is not None and self.echo_sensor_radius <= 0:
            raise ValueError(
                f"echo_sensor_radius must be positive, got {self.echo_sensor_radius}"
            )
        if self.echo_noise_sigmas < 0:
            raise ValueError(
                f"echo_noise_sigmas must be non-negative, got {self.echo_noise_sigmas}"
            )
        if not 0.0 < self.integrity_soft_sigma < self.integrity_hard_sigma:
            raise ValueError(
                f"need 0 < integrity_soft_sigma < integrity_hard_sigma, got "
                f"[{self.integrity_soft_sigma}, {self.integrity_hard_sigma}]"
            )
        if not 0.0 < self.integrity_ema_alpha <= 1.0:
            raise ValueError(
                f"integrity_ema_alpha must be in (0, 1], got {self.integrity_ema_alpha}"
            )
        if self.integrity_min_observations < 1:
            raise ValueError(
                f"integrity_min_observations must be >= 1, "
                f"got {self.integrity_min_observations}"
            )
        if self.integrity_probation_readings < 1:
            raise ValueError(
                f"integrity_probation_readings must be >= 1, "
                f"got {self.integrity_probation_readings}"
            )
        if not 0.0 < self.integrity_probation_weight <= 1.0:
            raise ValueError(
                f"integrity_probation_weight must be in (0, 1], "
                f"got {self.integrity_probation_weight}"
            )
        if not 0.0 <= self.integrity_min_weight < 1.0:
            raise ValueError(
                f"integrity_min_weight must be in [0, 1), "
                f"got {self.integrity_min_weight}"
            )
        if self.integrity_exclusion_radius <= 0:
            raise ValueError(
                f"integrity_exclusion_radius must be positive, "
                f"got {self.integrity_exclusion_radius}"
            )
        if self.integrity_refresh < 1:
            raise ValueError(
                f"integrity_refresh must be >= 1, got {self.integrity_refresh}"
            )
        if self.resample_noise_sigma < 0:
            raise ValueError(
                f"resample_noise_sigma must be non-negative, got {self.resample_noise_sigma}"
            )
        if self.strength_noise_rel < 0:
            raise ValueError(
                f"strength_noise_rel must be non-negative, got {self.strength_noise_rel}"
            )
        if not 0.0 < self.resample_range_fraction <= 1.0:
            raise ValueError(
                f"resample_range_fraction must be in (0, 1], "
                f"got {self.resample_range_fraction}"
            )
        if not 0.0 <= self.injection_fraction < 1.0:
            raise ValueError(
                f"injection_fraction must be in [0, 1), got {self.injection_fraction}"
            )
        if self.injection_scope not in ("global", "local"):
            raise ValueError(
                f"injection_scope must be 'global' or 'local', got {self.injection_scope!r}"
            )
        if self.resample_weight_mode not in ("reset", "preserve"):
            raise ValueError(
                f"resample_weight_mode must be 'reset' or 'preserve', "
                f"got {self.resample_weight_mode!r}"
            )
        if self.bandwidth <= 0:
            raise ValueError(f"bandwidth must be positive, got {self.bandwidth}")
        if self.meanshift_seeds < 1:
            raise ValueError(f"meanshift_seeds must be >= 1, got {self.meanshift_seeds}")
        if self.meanshift_tol <= 0:
            raise ValueError(f"meanshift_tol must be positive, got {self.meanshift_tol}")
        if self.meanshift_max_iter < 1:
            raise ValueError(
                f"meanshift_max_iter must be >= 1, got {self.meanshift_max_iter}"
            )
        if self.mode_merge_radius < 0:
            raise ValueError(
                f"mode_merge_radius must be non-negative, got {self.mode_merge_radius}"
            )
        if self.mode_mass_ratio < 0:
            raise ValueError(
                f"mode_mass_ratio must be non-negative, got {self.mode_mass_ratio}"
            )
        if self.min_estimate_strength < 0:
            raise ValueError(
                f"min_estimate_strength must be non-negative, got {self.min_estimate_strength}"
            )
        if self.area[0] <= 0 or self.area[1] <= 0:
            raise ValueError(f"area must be positive, got {self.area}")
        if self.grid_cell_size is not None and self.grid_cell_size <= 0:
            raise ValueError(
                f"grid_cell_size must be positive, got {self.grid_cell_size}"
            )
        if not 0.0 <= self.grid_incremental_threshold <= 1.0:
            raise ValueError(
                f"grid_incremental_threshold must be in [0, 1], "
                f"got {self.grid_incremental_threshold}"
            )
        if self.meanshift_truncation_sigmas < 0:
            raise ValueError(
                f"meanshift_truncation_sigmas must be non-negative, "
                f"got {self.meanshift_truncation_sigmas}"
            )
        if self.meanshift_truncation_min_particles < 0:
            raise ValueError(
                f"meanshift_truncation_min_particles must be non-negative, "
                f"got {self.meanshift_truncation_min_particles}"
            )
        if self.meanshift_tile_candidates < 1:
            raise ValueError(
                f"meanshift_tile_candidates must be >= 1, "
                f"got {self.meanshift_tile_candidates}"
            )
        if self.meanshift_workers < 1:
            raise ValueError(
                f"meanshift_workers must be >= 1, got {self.meanshift_workers}"
            )
        if self.backend is not None and self.backend not in (
            "default",
            "fast",
            "numba",
        ):
            raise ValueError(
                f"backend must be None, 'default', 'fast' or 'numba', "
                f"got {self.backend!r}"
            )

    def grid_cell(self) -> float:
        """The effective grid cell size (explicit, or fusion_range / 2)."""
        if self.grid_cell_size is not None:
            return self.grid_cell_size
        return 0.5 * self.fusion_range

    def with_overrides(self, **kwargs) -> "LocalizerConfig":
        """A copy with the given fields replaced (validated again)."""
        return replace(self, **kwargs)

    def without_fast_paths(self) -> "LocalizerConfig":
        """A copy running only the reference implementations.

        Disables grid selection, estimate caching, kernel truncation and
        the worker pool, and pins the array backend to the float64
        reference (an explicit "default" here also shields the reference
        runs from a stray REPRO_BACKEND environment override) -- the
        configuration every fast path is parity-tested against (and the
        baseline of ``bench_fastpath``).
        """
        return replace(
            self,
            use_grid_index=False,
            estimate_cache=False,
            meanshift_truncation_sigmas=0.0,
            meanshift_workers=1,
            backend="default",
        )
