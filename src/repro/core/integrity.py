"""Sensor-integrity scoring: surprise, down-weighting, quarantine.

The localizer trusts every arriving :class:`~repro.sensors.measurement.Measurement`
unconditionally -- a single Byzantine sensor feeding spoofed counts will
breed a confident phantom cluster and steal particle mass from genuine
sources.  :class:`SensorCredibility` closes that hole: it scores each
sensor's reading for *surprise* against the localizer's current belief,
tracks a per-sensor exponential moving average of the surprise, and maps
the average to a credibility weight in ``[0, 1]``:

* ``1.0`` -- the reading enters the filter at full strength;
* ``(0, 1)`` -- the Poisson log-likelihood is tempered by the weight
  (``L^w``), shrinking the reading's pull on the particles;
* ``0.0`` -- the sensor is **quarantined**: the localizer skips the
  reading entirely (no selection, no grid query, no reweighting, no echo
  EMA update).

Surprise scoring -- the phantom-estimate trap
--------------------------------------------

The naive score ("likelihood of the reading under current estimates") is
self-confirming: once a spoofed sensor has bred a phantom estimate at its
own position, the phantom *explains* the spoof and the surprise vanishes.
And the naive repair -- excluding every nearby estimate, trusting any one
neighbor to confirm an excess -- falls to *collusion*: two adjacent
Byzantine sensors vouch for each other's phantoms forever.  The score
therefore rests on majority witness voting:

* **Estimate support.**  An estimate within
  ``integrity_exclusion_radius`` of the sensor may explain its reading
  only if it is *supported*: among the sensors the inverse-square law
  says should see the estimate's share above the background noise floor
  (its capable witnesses, the suspect itself excluded), at least half
  observe a meaningful fraction of that share in their smoothed reading.
  A real source parked next to an honest sensor is seen by its witnesses
  and keeps explaining the reading; a phantom bred by a spoof is denied
  by every honest witness and is excluded -- no matter how loudly one
  colluding neighbor vouches for it.
* **Witness-vote corroboration.**  A remaining unexplained excess
  ``e = cpm - mu_explained`` is scored by the same electorate: each
  capable witness ``j`` (predicted share ``p_j = e / (1 + d_ij^2)``
  above the noise floor) votes on whether its own unexplained excess
  ``o_j`` reaches half of ``p_j``.  Corroboration ``c`` is the fraction
  of yes votes -- a brand-new real source wins the vote (``c ~ 1``, the
  filter is left to do its job), a spoof loses it even with a colluding
  minority (``c`` small), and with no capable witness at all ``c = 1``:
  an excess nobody could confirm is not evidence of spoofing.

The combined score is ``z = max(z_under, z_corr)`` where ``z_under``
catches sensors reading too low -- stuck counters, dead calibration --
and ``z_corr = (1 - c) * e / sqrt(max(mu_explained, 1))`` catches
uncorroborated excesses.  ``z_under`` is the square root of the Poisson
deviance against a *charitable* prediction over the same explained
estimate set: each estimate is pushed ``UNDER_POSITION_TOLERANCE``
meters farther away and shrunk by ``UNDER_STRENGTH_TOLERANCE`` first,
because near a source the ``1/(1+d^2)`` law is steep enough that the
filter's own transient localization error would otherwise condemn an
honest sensor.  Both scores are in Poisson standard deviations, so the
thresholds have a stable meaning across scenarios.

Known limits (see docs/ROBUSTNESS.md): the witness model is free-space
-- obstacle-heavy scenarios weaken honest votes -- and a *local
majority* of colluders around one sensor defeats the vote, the classic
Byzantine bound.

Quarantine lifecycle
--------------------

``active -> quarantined`` when the surprise EMA reaches
``integrity_hard_sigma`` (after ``integrity_min_observations`` readings);
``quarantined -> probation`` when the EMA decays below
``integrity_soft_sigma`` (quarantined readings are still *scored*, never
*used*); ``probation -> active`` after ``integrity_probation_readings``
calm readings, while any single reading at hard sigma re-quarantines
immediately.  See ``docs/ROBUSTNESS.md``.
"""

from __future__ import annotations

import math
from typing import Dict, Optional

import numpy as np

from repro.obs.metrics import NULL_REGISTRY, MetricsRegistry
from repro.obs.trace import NULL_TRACER, Tracer

ACTIVE = "active"
PROBATION = "probation"
QUARANTINED = "quarantined"

#: Charitable-expectation tolerances for the under-reading test: each
#: estimate may sit this many meters farther from the sensor ...
UNDER_POSITION_TOLERANCE = 3.0
#: ... and be this fraction weaker than estimated, before a low reading
#: counts as surprising.
UNDER_STRENGTH_TOLERANCE = 0.3


def poisson_deviance(count: float, rate: float) -> float:
    """The Poisson deviance ``g = 2 (rate - count + count ln(count/rate))``.

    ``sqrt(g)`` is the deviance residual -- approximately the number of
    Poisson standard deviations between ``count`` and ``rate``, accurate
    into the deep tails where the normal approximation fails.
    """
    if rate <= 0.0:
        return 0.0 if count <= 0.0 else math.inf
    if count <= 0.0:
        return 2.0 * rate
    return max(0.0, 2.0 * (rate - count + count * math.log(count / rate)))


class SensorCredibility:
    """Per-sensor surprise tracking and the quarantine state machine."""

    def __init__(
        self,
        config,
        tracer: Optional[Tracer] = None,
        metrics: Optional[MetricsRegistry] = None,
    ):
        self.config = config
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.metrics = metrics if metrics is not None else NULL_REGISTRY
        # sensor_id -> {"ema", "n", "status", "probation_left"}
        self._sensors: Dict[int, dict] = {}

    # --- scoring ----------------------------------------------------------------

    def surprise(
        self,
        sensor_x: float,
        sensor_y: float,
        cpm: float,
        sources: np.ndarray,
        reading_ema: dict,
        background_cpm: float,
        scale: float,
    ) -> float:
        """The reading's surprise in Poisson sigmas (see module docstring).

        ``sources`` is an ``(n, 3)`` array of current ``(x, y, strength)``
        estimates; ``reading_ema`` maps ``(x, y)`` sensor positions to
        smoothed readings (the localizer's echo-filter EMA); ``scale`` is
        CPM per microcurie at distance 0 (``CPM_PER_MICROCURIE *
        assumed_efficiency``).
        """
        exclusion_sq = self.config.integrity_exclusion_radius ** 2
        noise_floor = 2.0 * math.sqrt(max(background_cpm, 1.0))
        mu_explained = background_cpm
        mu_charitable = background_cpm
        explained = sources[:0]
        if sources.shape[0]:
            dx = sources[:, 0] - sensor_x
            dy = sources[:, 1] - sensor_y
            dist_sq = dx * dx + dy * dy
            # An estimate may explain this sensor's reading if it is far
            # enough away not to be its own echo, OR if the witness
            # majority confirms it is real (support).  Unsupported local
            # estimates -- phantoms -- explain nothing here.
            keep = [
                i for i in range(sources.shape[0])
                if dist_sq[i] > exclusion_sq
                or self._estimate_support(
                    sources[i], sensor_x, sensor_y, reading_ema,
                    background_cpm, scale, noise_floor,
                )
            ]
            explained = sources[keep]
            kept_dist_sq = dist_sq[keep]
            contributions = scale * explained[:, 2] / (1.0 + kept_dist_sq)
            mu_explained += float(contributions.sum())
            # The *charitable* expectation: every explained estimate
            # pushed UNDER_POSITION_TOLERANCE farther away and shrunk by
            # UNDER_STRENGTH_TOLERANCE.  Close to a source the 1/(1+d^2)
            # law is so steep that a meter of localization error doubles
            # the raw prediction -- an honest sensor must never be
            # condemned for the filter's own transient overshoot, so
            # under-reading is judged against the lowest expectation any
            # plausible perturbation of the estimates supports.
            shifted = (np.sqrt(kept_dist_sq) + UNDER_POSITION_TOLERANCE) ** 2
            mu_charitable += float(
                (
                    scale * explained[:, 2] * (1.0 - UNDER_STRENGTH_TOLERANCE)
                    / (1.0 + shifted)
                ).sum()
            )

        z_under = 0.0
        if cpm < mu_charitable:
            z_under = math.sqrt(poisson_deviance(cpm, mu_charitable))

        excess = cpm - mu_explained
        z_corr = 0.0
        if excess > noise_floor:
            corroboration = self._corroboration(
                sensor_x, sensor_y, excess, explained,
                reading_ema, background_cpm, scale, noise_floor,
            )
            z_corr = (
                (1.0 - corroboration) * excess / math.sqrt(max(mu_explained, 1.0))
            )
        return max(z_under, z_corr)

    def _estimate_support(
        self,
        estimate: np.ndarray,
        sensor_x: float,
        sensor_y: float,
        reading_ema: dict,
        background_cpm: float,
        scale: float,
        noise_floor: float,
    ) -> bool:
        """Does the witness majority confirm this estimate is real?

        Capable witnesses are the *other* sensors whose predicted share
        of the estimate (``scale * strength / (1 + d^2)``) clears the
        noise floor; each votes yes when its smoothed reading shows at
        least half that share above background.  With no capable witness
        the estimate gets the benefit of the doubt.
        """
        ex, ey, strength = float(estimate[0]), float(estimate[1]), float(estimate[2])
        votes = eligible = 0
        for (nx, ny), smoothed in reading_ema.items():
            if (nx - sensor_x) ** 2 + (ny - sensor_y) ** 2 < 1e-9:
                continue  # the suspect cannot witness its own explanation
            predicted = scale * strength / (
                1.0 + (nx - ex) ** 2 + (ny - ey) ** 2
            )
            if predicted < noise_floor:
                continue
            eligible += 1
            if float(smoothed) - background_cpm >= 0.5 * predicted:
                votes += 1
        return eligible == 0 or votes * 2 >= eligible

    def _corroboration(
        self,
        sensor_x: float,
        sensor_y: float,
        excess: float,
        explained: np.ndarray,
        reading_ema: dict,
        background_cpm: float,
        scale: float,
        noise_floor: float,
    ) -> float:
        """The witness vote on the excess: fraction of capable witnesses
        whose own unexplained excess reaches half their predicted share.

        Witnesses are scored against the *same* explained-estimate set as
        the sensor itself, so a phantom can vouch for nobody, and a
        colluding Byzantine minority is outvoted by the honest witnesses
        who see nothing.  With no witness close enough to expect a share
        above the noise floor, returns 1.0: an excess nobody could
        confirm is not evidence of spoofing.
        """
        votes = eligible = 0
        for (nx, ny), smoothed in reading_ema.items():
            d_sq = (nx - sensor_x) ** 2 + (ny - sensor_y) ** 2
            if d_sq < 1e-9:
                continue  # the sensor itself
            predicted = excess / (1.0 + d_sq)
            if predicted < noise_floor:
                continue
            eligible += 1
            # The witness's unexplained excess: o_j = ema_j - (background
            # + explained predictions at j).
            mu_j = background_cpm
            if explained.shape[0]:
                dxk = explained[:, 0] - nx
                dyk = explained[:, 1] - ny
                mu_j += float(
                    (
                        scale * explained[:, 2] / (1.0 + dxk * dxk + dyk * dyk)
                    ).sum()
                )
            if max(float(smoothed) - mu_j, 0.0) >= 0.5 * predicted:
                votes += 1
        return 1.0 if eligible == 0 else votes / eligible

    # --- the state machine ------------------------------------------------------

    def assess(
        self,
        sensor_id: int,
        sensor_x: float,
        sensor_y: float,
        cpm: float,
        sources: np.ndarray,
        reading_ema: dict,
        background_cpm: float,
        scale: float,
    ) -> float:
        """Score one reading and return its credibility weight in [0, 1]."""
        if sensor_id < 0:
            return 1.0  # anonymous readings cannot be tracked
        config = self.config
        z = self.surprise(
            sensor_x, sensor_y, cpm, sources, reading_ema, background_cpm, scale
        )
        entry = self._sensors.get(sensor_id)
        if entry is None:
            entry = {
                "ema": z, "n": 1, "status": ACTIVE, "probation_left": 0,
            }
            self._sensors[sensor_id] = entry
        else:
            alpha = config.integrity_ema_alpha
            entry["ema"] = alpha * z + (1.0 - alpha) * entry["ema"]
            entry["n"] += 1

        if entry["n"] < config.integrity_min_observations:
            return 1.0  # warm-up: no belief yet to be surprised against

        status = entry["status"]
        ema = entry["ema"]
        if status == ACTIVE:
            if ema >= config.integrity_hard_sigma:
                self._transition(sensor_id, entry, QUARANTINED, z)
                return 0.0
            return self._active_weight(sensor_id, ema)
        if status == QUARANTINED:
            if ema < config.integrity_soft_sigma:
                entry["probation_left"] = config.integrity_probation_readings
                self._transition(sensor_id, entry, PROBATION, z)
                return config.integrity_probation_weight
            return 0.0
        # probation
        if z >= config.integrity_hard_sigma or ema >= config.integrity_hard_sigma:
            self._transition(sensor_id, entry, QUARANTINED, z)
            return 0.0
        entry["probation_left"] -= 1
        if entry["probation_left"] <= 0 and ema < config.integrity_soft_sigma:
            self._transition(sensor_id, entry, ACTIVE, z)
            return self._active_weight(sensor_id, ema)
        return config.integrity_probation_weight

    def _active_weight(self, sensor_id: int, ema: float) -> float:
        config = self.config
        if ema <= config.integrity_soft_sigma:
            return 1.0
        span = config.integrity_hard_sigma - config.integrity_soft_sigma
        fraction = (ema - config.integrity_soft_sigma) / span
        weight = 1.0 - (1.0 - config.integrity_min_weight) * fraction
        if self.metrics.enabled:
            self.metrics.counter("integrity.downweighted").inc()
        return max(config.integrity_min_weight, weight)

    def _transition(
        self, sensor_id: int, entry: dict, status: str, z: float
    ) -> None:
        previous = entry["status"]
        entry["status"] = status
        if self.tracer.enabled:
            self.tracer.emit(
                "integrity",
                sensor_id=int(sensor_id),
                transition=f"{previous}->{status}",
                surprise=float(z),
                surprise_ema=float(entry["ema"]),
                observations=int(entry["n"]),
            )
        if self.metrics.enabled:
            if status == QUARANTINED:
                self.metrics.counter("integrity.quarantined").inc()
            elif status == ACTIVE:
                self.metrics.counter("integrity.readmitted").inc()
            self.metrics.gauge("integrity.quarantined_now").set(
                sum(
                    1 for e in self._sensors.values()
                    if e["status"] == QUARANTINED
                )
            )

    # --- inspection / checkpointing ---------------------------------------------

    def status(self, sensor_id: int) -> str:
        entry = self._sensors.get(sensor_id)
        return entry["status"] if entry is not None else ACTIVE

    def surprise_ema(self, sensor_id: int) -> float:
        entry = self._sensors.get(sensor_id)
        return float(entry["ema"]) if entry is not None else 0.0

    def quarantined_ids(self) -> list:
        return sorted(
            sid for sid, e in self._sensors.items() if e["status"] == QUARANTINED
        )

    def export_state(self) -> dict:
        return {
            "sensors": {
                str(sid): {
                    "ema": float(e["ema"]),
                    "n": int(e["n"]),
                    "status": e["status"],
                    "probation_left": int(e["probation_left"]),
                }
                for sid, e in self._sensors.items()
            }
        }

    def load_state(self, state: dict) -> None:
        self._sensors = {
            int(sid): {
                "ema": float(e["ema"]),
                "n": int(e["n"]),
                "status": str(e["status"]),
                "probation_left": int(e["probation_left"]),
            }
            for sid, e in state.get("sensors", {}).items()
        }
