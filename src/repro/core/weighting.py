"""Particle weighting: Poisson measurement likelihood (Section V-C).

Each particle hypothesizes a *single* source.  Given a measurement
``m(S_i)``, the expected count under particle ``p`` is Eq. (4) with that
one source in free space (the localizer knows neither the other sources nor
the obstacles -- the fusion range is what makes the single-source
approximation locally valid).  The weight update is

    w(p) <- P(m(S_i) | p) * w(p)

computed in log space: the Poisson pmf at a wrong hypothesis underflows any
float, but only the *relative* weights within the touched subset matter.
"""

from __future__ import annotations

import numpy as np
from scipy.special import gammaln

from repro.core.particles import ParticleSet
from repro.physics.intensity import expected_cpm_free_space

#: Weights below max_subset_weight * RELATIVE_FLOOR are clamped to that
#: floor so a subset is never entirely zeroed by one noisy reading.
RELATIVE_FLOOR = 1e-30


def poisson_log_pmf(count: float, rates: np.ndarray) -> np.ndarray:
    """log P(count | Poisson(rate)) for an array of rates.

    Uses the gamma-function form so it stays finite for the large counts a
    nearby strong source produces (lambda up to ~1e6 CPM).  Zero rates are
    handled exactly: log pmf is 0 for count == 0 and -inf otherwise.
    """
    rates = np.asarray(rates, dtype=float)
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    out = np.full(rates.shape, -np.inf)
    positive = rates > 0
    out[positive] = (
        count * np.log(rates[positive]) - rates[positive] - gammaln(count + 1.0)
    )
    if count == 0:
        out[~positive] = 0.0
    return out


def tempered_poisson_log_likelihood(
    count: float,
    rates: np.ndarray,
    under_prediction_tempering: float = 1.0,
) -> np.ndarray:
    """Asymmetric Poisson log-likelihood for single-source hypotheses.

    A particle models *one* source, but the sensor observes the *sum* of
    all sources (Eq. 4).  Under-prediction (rate < count) is therefore not
    conclusive evidence against the hypothesis -- the missing counts may
    come from other, unmodeled sources -- whereas over-prediction is: the
    hypothesized source alone would have produced more than was observed.

    We temper the under-prediction branch by ``alpha`` in [0, 1]:

        logL(rate) = logpmf(count; rate)                      rate >= count
        logL(rate) = logpmf(count; count)
                     + alpha * (logpmf(count; rate)
                                - logpmf(count; count))       rate <  count

    ``alpha = 1`` recovers the symmetric Poisson likelihood (the naive
    reading of the paper); ``alpha = 0`` is the profile likelihood over a
    non-negative unknown interference term.  Intermediate values keep the
    attraction that tightens a cluster onto its source while letting
    clusters survive the superposed signals of their neighbours -- without
    this, the strongest source's cluster slowly absorbs the entire
    population in multi-source runs.
    """
    if not 0.0 <= under_prediction_tempering <= 1.0:
        raise ValueError(
            f"tempering must be in [0, 1], got {under_prediction_tempering}"
        )
    log_like = poisson_log_pmf(count, rates)
    if under_prediction_tempering >= 1.0:
        return log_like
    under = np.asarray(rates, dtype=float) < count
    if np.any(under):
        at_count = float(poisson_log_pmf(count, np.array([count]))[0]) if count > 0 else 0.0
        log_like[under] = at_count + under_prediction_tempering * (
            log_like[under] - at_count
        )
    return log_like


def expected_rates_for_particles(
    particles: ParticleSet,
    indices: np.ndarray,
    sensor_x: float,
    sensor_y: float,
    efficiency: float,
    background_cpm: float,
) -> np.ndarray:
    """Expected CPM at the sensor under each selected particle's hypothesis."""
    return expected_cpm_free_space(
        sensor_x,
        sensor_y,
        particles.xs[indices],
        particles.ys[indices],
        particles.strengths[indices],
        efficiency=efficiency,
        background_cpm=background_cpm,
    )


def reweight_in_place(
    particles: ParticleSet,
    indices: np.ndarray,
    observed_cpm: float,
    sensor_x: float,
    sensor_y: float,
    efficiency: float = 1.0,
    background_cpm: float = 0.0,
    under_prediction_tempering: float = 1.0,
    interference_cpm: np.ndarray | float = 0.0,
    credibility_weight: float = 1.0,
    backend=None,
) -> None:
    """Apply the Bayesian weight update to the selected particles.

    The subset's *total* weight mass is preserved; the update redistributes
    mass within the subset according to the likelihoods.  This keeps the
    per-region masses comparable across the whole area, which is what lets
    one shared population track many sources at once (see DESIGN.md for the
    discussion of this design point; the ablation
    ``resample_weight_mode="preserve"`` explores the alternative).

    ``credibility_weight`` tempers the whole likelihood (``L^w``) for
    readings from suspect sensors (see :mod:`repro.core.integrity`): 1.0
    is full trust, values toward 0 flatten the update so the reading
    barely moves the particles.

    ``backend`` routes the update through an accelerated
    :class:`repro.core.backend.ArrayBackend` kernel when one is supplied
    and accelerated; the default (and any non-accelerated backend) runs
    the float64 reference body below unchanged.
    """
    if backend is not None and backend.accelerated:
        backend.reweight(
            particles,
            indices,
            observed_cpm,
            sensor_x,
            sensor_y,
            efficiency=efficiency,
            background_cpm=background_cpm,
            under_prediction_tempering=under_prediction_tempering,
            interference_cpm=interference_cpm,
            credibility_weight=credibility_weight,
        )
        return
    if not 0.0 <= credibility_weight <= 1.0:
        raise ValueError(
            f"credibility_weight must be in [0, 1], got {credibility_weight}"
        )
    if len(indices) == 0:
        return
    # Every path below (including the degenerate-subset backfill and the
    # all-impossible early return) may touch the weights: bump once here.
    particles.mark_reweighted()
    subset_mass = float(particles.weights[indices].sum())
    if subset_mass <= 0:
        # Subset was fully deflated at some earlier point; give it an even
        # share so the likelihood can act on it again.
        subset_mass = len(indices) / len(particles)
        particles.weights[indices] = subset_mass / len(indices)

    rates = expected_rates_for_particles(
        particles, indices, sensor_x, sensor_y, efficiency, background_cpm
    )
    # Expected contribution of *other already-estimated sources* at this
    # sensor (see MultiSourceLocalizer._interference_for): raises each
    # particle's expected rate so that readings elevated by distant known
    # sources stop supporting phantom local hypotheses.
    rates = rates + np.asarray(interference_cpm, dtype=float)
    log_like = tempered_poisson_log_likelihood(
        observed_cpm, rates, under_prediction_tempering
    )
    if credibility_weight != 1.0:
        # -inf (impossible hypothesis) stays -inf at any trust level;
        # scaling it directly would produce nan at weight 0.
        log_like = np.where(
            np.isfinite(log_like), credibility_weight * log_like, log_like
        )
    with np.errstate(divide="ignore"):
        log_prior = np.log(particles.weights[indices])
    log_post = log_like + log_prior

    finite = np.isfinite(log_post)
    if not np.any(finite):
        # Every hypothesis is impossible under this reading (e.g. count > 0
        # with a zero-rate model).  Keep the prior rather than zeroing.
        return
    peak = log_post[finite].max()
    posterior = np.exp(np.maximum(log_post - peak, np.log(RELATIVE_FLOOR)))
    posterior_sum = posterior.sum()
    particles.weights[indices] = posterior * (subset_mass / posterior_sum)
