"""Weighted mean-shift mode finding (Section V-D, Eq. 6-7).

The weighted kernel density over the particles,

    L_P(x) = (sum_i w_i)^-1 * sum_i w_i * phi_H(x - p_i),

is a mixture whose modes correspond to the sources.  Mean-shift ascends
L_P from many seeds simultaneously; every converged seed is a candidate
mode.  The implementation is fully vectorized: one (seeds x particles)
distance matrix per iteration, all seeds updated at once, converged seeds
frozen.  This vectorization is our stand-in for the paper's multi-core
parallelism (mean-shift is where they report the speedup, and it is where
our array math concentrates the work).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional, Tuple

import numpy as np

if TYPE_CHECKING:
    from repro.core.grid import SpatialGridIndex


def gaussian_kernel_weights(
    points: np.ndarray,
    center: np.ndarray,
    bandwidth: float,
) -> np.ndarray:
    """Unnormalized Gaussian kernel phi_H evaluated at ``points - center``.

    ``H = bandwidth^2 * I``; the normalization constant of Eq. (6) cancels
    in the mean-shift ratio (Eq. 7), so it is omitted.
    """
    diff = points - center
    sq = np.einsum("ij,ij->i", diff, diff)
    return np.exp(-0.5 * sq / (bandwidth * bandwidth))


def mean_shift(
    start: np.ndarray,
    points: np.ndarray,
    weights: np.ndarray,
    bandwidth: float,
    tol: float = 1e-2,
    max_iter: int = 100,
) -> np.ndarray:
    """Run mean-shift from a single starting point until convergence.

    Returns the converged mode location.  Provided for clarity and tests;
    the batch driver :func:`mean_shift_modes` is what the localizer uses.
    """
    x = np.asarray(start, dtype=float).copy()
    for _ in range(max_iter):
        k = gaussian_kernel_weights(points, x, bandwidth) * weights
        total = k.sum()
        if total <= 0:
            break
        new_x = k @ points / total
        if np.linalg.norm(new_x - x) < tol:
            x = new_x
            break
        x = new_x
    return x


def mean_shift_modes(
    seeds: np.ndarray,
    points: np.ndarray,
    weights: np.ndarray,
    bandwidth: float,
    tol: float = 1e-2,
    max_iter: int = 100,
    stats: Optional[dict] = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Batch mean-shift: ascend from every seed simultaneously.

    Parameters
    ----------
    seeds : (S, D) starting points.
    points : (N, D) particle coordinates.
    weights : (N,) non-negative particle weights.
    bandwidth : Gaussian kernel bandwidth.
    stats : optional dict that, when supplied, receives instrumentation
        fields: ``sweeps`` (ascent iterations executed) and ``n_seeds``.

    Returns
    -------
    modes : (S, D) converged locations (one per seed, unmerged).
    densities : (S,) the weighted kernel density value at each mode
        (normalized by total weight -- this is L_P(mode) up to the constant
        kernel normalization, used downstream as the mode's mass score).
    """
    seeds = np.atleast_2d(np.asarray(seeds, dtype=float)).copy()
    points = np.atleast_2d(np.asarray(points, dtype=float))
    weights = np.asarray(weights, dtype=float)
    if points.shape[0] != weights.shape[0]:
        raise ValueError(
            f"points ({points.shape[0]}) and weights ({weights.shape[0]}) disagree"
        )
    total_weight = weights.sum()
    if total_weight <= 0:
        raise ValueError("mean-shift needs positive total weight")

    active = np.ones(len(seeds), dtype=bool)
    inv_two_h_sq = 0.5 / (bandwidth * bandwidth)
    sweeps = 0
    for _ in range(max_iter):
        if not np.any(active):
            break
        sweeps += 1
        current = seeds[active]
        # (A, N) squared distances from active seeds to all points.
        sq = (
            np.sum(current * current, axis=1)[:, None]
            - 2.0 * current @ points.T
            + np.sum(points * points, axis=1)[None, :]
        )
        kernel = np.exp(-sq * inv_two_h_sq) * weights[None, :]
        totals = kernel.sum(axis=1)
        # Seeds stranded in zero-density regions stop where they are.
        stranded = totals <= 0
        shifted = np.where(
            stranded[:, None],
            current,
            kernel @ points / np.maximum(totals, 1e-300)[:, None],
        )
        moved = np.linalg.norm(shifted - current, axis=1)
        seeds[active] = shifted
        still_active = (moved >= tol) & ~stranded
        active_indices = np.nonzero(active)[0]
        active[active_indices[~still_active]] = False

    if stats is not None:
        stats["sweeps"] = sweeps
        stats["n_seeds"] = len(seeds)
    densities = _density_at(seeds, points, weights, bandwidth) / total_weight
    return seeds, densities


def truncated_mean_shift_modes(
    seeds: np.ndarray,
    points: np.ndarray,
    weights: np.ndarray,
    bandwidth: float,
    grid: "SpatialGridIndex",
    truncation_sigmas: float = 4.0,
    tol: float = 1e-2,
    max_iter: int = 100,
    tile_candidates: int = 200_000,
    stats: Optional[dict] = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Grid-accelerated mean-shift with a truncated Gaussian kernel.

    Numerically the Gaussian kernel is negligible beyond a few bandwidths
    (at 4 sigma it is below 3.4e-4 of its peak), so each ascent step only
    needs the particles near the seed.  This driver gathers candidates
    from the ``grid`` (built over the same ``points``) within
    ``truncation_sigmas * bandwidth`` of each active seed and evaluates
    the kernel over that ragged candidate set instead of the dense
    (seeds x N) matrix of :func:`mean_shift_modes`.

    Two refinements keep the bookkeeping cheap and bounded:

    * **cached gathers** -- each seed's candidate set is fetched with one
      extra bandwidth of margin and reused until the seed drifts more
      than that margin from its gather center (a converging seed
      re-gathers only a handful of times);
    * **tiling** -- active seeds are processed in tiles of at most
      ``tile_candidates`` gathered points, so peak memory is bounded
      regardless of the seed count.

    Returns the same ``(modes, densities)`` pair as
    :func:`mean_shift_modes`; results agree with the dense sweep to well
    within the merge radius (parity-tested), not bit-exactly.  ``stats``
    additionally receives ``gathers`` and ``candidates`` (kernel
    evaluations summed over sweeps).
    """
    seeds = np.atleast_2d(np.asarray(seeds, dtype=float)).copy()
    points = np.atleast_2d(np.asarray(points, dtype=float))
    weights = np.asarray(weights, dtype=float)
    if points.shape[1] != 2:
        raise ValueError("truncated mean-shift requires 2-D points")
    if points.shape[0] != weights.shape[0]:
        raise ValueError(
            f"points ({points.shape[0]}) and weights ({weights.shape[0]}) disagree"
        )
    if truncation_sigmas <= 0:
        raise ValueError(
            f"truncation_sigmas must be positive, got {truncation_sigmas}"
        )
    total_weight = weights.sum()
    if total_weight <= 0:
        raise ValueError("mean-shift needs positive total weight")

    n_seeds = len(seeds)
    radius = truncation_sigmas * bandwidth
    margin = bandwidth
    inv_two_h_sq = 0.5 / (bandwidth * bandwidth)

    active = np.ones(n_seeds, dtype=bool)
    neighbors: list = [None] * n_seeds
    centers = np.empty_like(seeds)
    gathers = 0
    candidates_total = 0
    sweeps = 0

    def _shift_tile(tile: np.ndarray) -> None:
        """One ascent step for the seeds in ``tile`` (all non-empty)."""
        nonlocal candidates_total
        counts = np.array([len(neighbors[i]) for i in tile])
        flat = np.concatenate([neighbors[i] for i in tile])
        candidates_total += len(flat)
        current = seeds[tile]
        px = points[flat]
        diff = px - np.repeat(current, counts, axis=0)
        sq = np.einsum("ij,ij->i", diff, diff)
        kernel = np.exp(-sq * inv_two_h_sq) * weights[flat]
        offsets = np.concatenate(([0], np.cumsum(counts[:-1])))
        totals = np.add.reduceat(kernel, offsets)
        numer_x = np.add.reduceat(kernel * px[:, 0], offsets)
        numer_y = np.add.reduceat(kernel * px[:, 1], offsets)
        stranded = totals <= 0
        safe = np.maximum(totals, 1e-300)
        shifted = np.where(
            stranded[:, None],
            current,
            np.column_stack((numer_x / safe, numer_y / safe)),
        )
        moved = np.linalg.norm(shifted - current, axis=1)
        seeds[tile] = shifted
        active[tile[(moved < tol) | stranded]] = False

    for _ in range(max_iter):
        act_idx = np.nonzero(active)[0]
        if len(act_idx) == 0:
            break
        sweeps += 1
        # Refresh stale candidate caches: a seed more than ``margin`` from
        # its gather center may have drifted into un-gathered cells.
        for i in act_idx:
            if neighbors[i] is None or (
                (seeds[i, 0] - centers[i, 0]) ** 2
                + (seeds[i, 1] - centers[i, 1]) ** 2
                > margin * margin
            ):
                neighbors[i] = grid.query_candidates(
                    seeds[i, 0], seeds[i, 1], radius + margin
                )
                centers[i] = seeds[i]
                gathers += 1
        # Seeds with no candidate in reach are stranded where they stand.
        empty = np.array([len(neighbors[i]) == 0 for i in act_idx])
        active[act_idx[empty]] = False
        act_idx = act_idx[~empty]
        # Tile to bound the size of the flattened candidate arrays.
        tile_start = 0
        tile_count = 0
        for pos, i in enumerate(act_idx):
            tile_count += len(neighbors[i])
            if tile_count >= tile_candidates and pos + 1 < len(act_idx):
                _shift_tile(act_idx[tile_start:pos + 1])
                tile_start = pos + 1
                tile_count = 0
        if tile_start < len(act_idx):
            _shift_tile(act_idx[tile_start:])

    if stats is not None:
        stats["sweeps"] = sweeps
        stats["n_seeds"] = n_seeds
        stats["gathers"] = gathers
        stats["candidates"] = candidates_total
    densities = _truncated_density_at(
        seeds, points, weights, bandwidth, grid, radius
    ) / total_weight
    return seeds, densities


def padded_candidate_rows(
    grid: "SpatialGridIndex",
    centers: np.ndarray,
    radius: float,
    backend=None,
) -> Tuple[np.ndarray, np.ndarray, int]:
    """Gather each center's grid candidates into a padded index matrix.

    The accelerated mean-shift backend trades the reference driver's
    ragged per-seed lists (concatenate / repeat / reduceat every sweep)
    for fixed-capacity structure-of-arrays rows: ``idx_rows`` is an
    ``(n_centers, capacity)`` int64 matrix whose row ``i`` holds center
    ``i``'s candidate indices left-justified and zero-padded, ``counts``
    gives the valid prefix lengths, and ``capacity`` is the smallest
    power of two covering the largest gather (power-of-two so scratch
    buffers keyed on the shape stabilize across steps).  Padding slots
    point at particle 0; consumers must mask them out (the backend zeroes
    their kernel weights).

    Unlike the reference driver's cached gathers, the grid candidates are
    filtered to the exact disc here: the sweep arithmetic re-reads every
    row slot dozens of times, so paying one distance test per gather to
    shed the ~2x bounding-box overhang (and the padding it would inflate)
    is a clear win.

    ``backend``, when accelerated, answers the whole gather with one
    batched exact-disc CSR query (``multi_disc_query``) instead of a
    scalar query-and-filter per center; rows come out ascending instead
    of cell-major, which only permutes the float32 row reductions.
    """
    centers = np.atleast_2d(np.asarray(centers, dtype=float))
    if backend is not None and getattr(backend, "accelerated", False):
        flat, offsets = backend.multi_disc_query(
            grid, centers[:, 0], centers[:, 1], radius, sort_rows=False
        )
        counts = np.asarray(offsets[1:] - offsets[:-1], dtype=np.int64)
        capacity = 1
        largest = int(counts.max()) if len(counts) else 1
        while capacity < max(largest, 1):
            capacity *= 2
        idx_rows = np.zeros((len(centers), capacity), dtype=np.int64)
        # Left-justified scatter of the CSR payload in one shot: the flat
        # array is already row-major, so the row-prefix mask enumerates
        # its destinations in order.
        prefix = np.arange(capacity)[None, :] < counts[:, None]
        idx_rows[prefix] = flat
        return idx_rows, counts, capacity
    gathered = grid.query_candidates_many(centers[:, 0], centers[:, 1], radius)
    radius_sq = radius * radius
    for i, candidates in enumerate(gathered):
        dx = grid.xs[candidates] - centers[i, 0]
        dy = grid.ys[candidates] - centers[i, 1]
        gathered[i] = candidates[dx * dx + dy * dy <= radius_sq]
    counts = np.array([len(g) for g in gathered], dtype=np.int64)
    capacity = 1
    largest = int(counts.max()) if len(counts) else 1
    while capacity < max(largest, 1):
        capacity *= 2
    idx_rows = np.zeros((len(centers), capacity), dtype=np.int64)
    for i, candidates in enumerate(gathered):
        idx_rows[i, : len(candidates)] = candidates
    return idx_rows, counts, capacity


def _truncated_density_at(
    locations: np.ndarray,
    points: np.ndarray,
    weights: np.ndarray,
    bandwidth: float,
    grid: "SpatialGridIndex",
    radius: float,
) -> np.ndarray:
    """Truncated-kernel analog of :func:`_density_at` (per-location gather)."""
    out = np.zeros(len(locations))
    inv_two_h_sq = 0.5 / (bandwidth * bandwidth)
    for j, (x, y) in enumerate(locations):
        idx = grid.query_candidates(x, y, radius)
        if len(idx) == 0:
            continue
        dx = points[idx, 0] - x
        dy = points[idx, 1] - y
        kernel = np.exp(-(dx * dx + dy * dy) * inv_two_h_sq)
        out[j] = kernel @ weights[idx]
    return out


def _density_at(
    locations: np.ndarray,
    points: np.ndarray,
    weights: np.ndarray,
    bandwidth: float,
) -> np.ndarray:
    """Weighted (unnormalized-kernel) density at each location."""
    sq = (
        np.sum(locations * locations, axis=1)[:, None]
        - 2.0 * locations @ points.T
        + np.sum(points * points, axis=1)[None, :]
    )
    kernel = np.exp(-0.5 * sq / (bandwidth * bandwidth))
    return kernel @ weights


def select_seeds(
    points: np.ndarray,
    weights: np.ndarray,
    n_seeds: int,
    rng: Optional[np.random.Generator] = None,
) -> np.ndarray:
    """Pick mean-shift seeds from the particle population.

    Half the seeds are the highest-weight particles (they sit near modes
    already); the rest are a uniform subsample for coverage, so a nascent
    cluster that has density but no weight spike still attracts a seed.
    Deterministic when ``rng`` is None (evenly strided subsample).
    """
    n = len(points)
    if n_seeds >= n:
        return points.copy()
    n_top = n_seeds // 2
    top = np.argsort(weights)[-n_top:] if n_top > 0 else np.array([], dtype=int)
    n_rest = n_seeds - len(top)
    if rng is None:
        rest = np.linspace(0, n - 1, n_rest).astype(int)
    else:
        rest = rng.choice(n, size=n_rest, replace=False)
    idx = np.unique(np.concatenate((top, rest)))
    if len(idx) < n_seeds:
        # The top-weight and coverage sets overlapped; top up from indices
        # not yet chosen (lowest first, deterministic) so the caller always
        # gets the full seed budget.
        unused = np.setdiff1d(np.arange(n), idx, assume_unique=True)
        idx = np.concatenate((idx, unused[: n_seeds - len(idx)]))
    return points[idx].copy()
