"""Weighted mean-shift mode finding (Section V-D, Eq. 6-7).

The weighted kernel density over the particles,

    L_P(x) = (sum_i w_i)^-1 * sum_i w_i * phi_H(x - p_i),

is a mixture whose modes correspond to the sources.  Mean-shift ascends
L_P from many seeds simultaneously; every converged seed is a candidate
mode.  The implementation is fully vectorized: one (seeds x particles)
distance matrix per iteration, all seeds updated at once, converged seeds
frozen.  This vectorization is our stand-in for the paper's multi-core
parallelism (mean-shift is where they report the speedup, and it is where
our array math concentrates the work).
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np


def gaussian_kernel_weights(
    points: np.ndarray,
    center: np.ndarray,
    bandwidth: float,
) -> np.ndarray:
    """Unnormalized Gaussian kernel phi_H evaluated at ``points - center``.

    ``H = bandwidth^2 * I``; the normalization constant of Eq. (6) cancels
    in the mean-shift ratio (Eq. 7), so it is omitted.
    """
    diff = points - center
    sq = np.einsum("ij,ij->i", diff, diff)
    return np.exp(-0.5 * sq / (bandwidth * bandwidth))


def mean_shift(
    start: np.ndarray,
    points: np.ndarray,
    weights: np.ndarray,
    bandwidth: float,
    tol: float = 1e-2,
    max_iter: int = 100,
) -> np.ndarray:
    """Run mean-shift from a single starting point until convergence.

    Returns the converged mode location.  Provided for clarity and tests;
    the batch driver :func:`mean_shift_modes` is what the localizer uses.
    """
    x = np.asarray(start, dtype=float).copy()
    for _ in range(max_iter):
        k = gaussian_kernel_weights(points, x, bandwidth) * weights
        total = k.sum()
        if total <= 0:
            break
        new_x = k @ points / total
        if np.linalg.norm(new_x - x) < tol:
            x = new_x
            break
        x = new_x
    return x


def mean_shift_modes(
    seeds: np.ndarray,
    points: np.ndarray,
    weights: np.ndarray,
    bandwidth: float,
    tol: float = 1e-2,
    max_iter: int = 100,
    stats: Optional[dict] = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Batch mean-shift: ascend from every seed simultaneously.

    Parameters
    ----------
    seeds : (S, D) starting points.
    points : (N, D) particle coordinates.
    weights : (N,) non-negative particle weights.
    bandwidth : Gaussian kernel bandwidth.
    stats : optional dict that, when supplied, receives instrumentation
        fields: ``sweeps`` (ascent iterations executed) and ``n_seeds``.

    Returns
    -------
    modes : (S, D) converged locations (one per seed, unmerged).
    densities : (S,) the weighted kernel density value at each mode
        (normalized by total weight -- this is L_P(mode) up to the constant
        kernel normalization, used downstream as the mode's mass score).
    """
    seeds = np.atleast_2d(np.asarray(seeds, dtype=float)).copy()
    points = np.atleast_2d(np.asarray(points, dtype=float))
    weights = np.asarray(weights, dtype=float)
    if points.shape[0] != weights.shape[0]:
        raise ValueError(
            f"points ({points.shape[0]}) and weights ({weights.shape[0]}) disagree"
        )
    total_weight = weights.sum()
    if total_weight <= 0:
        raise ValueError("mean-shift needs positive total weight")

    active = np.ones(len(seeds), dtype=bool)
    inv_two_h_sq = 0.5 / (bandwidth * bandwidth)
    sweeps = 0
    for _ in range(max_iter):
        if not np.any(active):
            break
        sweeps += 1
        current = seeds[active]
        # (A, N) squared distances from active seeds to all points.
        sq = (
            np.sum(current * current, axis=1)[:, None]
            - 2.0 * current @ points.T
            + np.sum(points * points, axis=1)[None, :]
        )
        kernel = np.exp(-sq * inv_two_h_sq) * weights[None, :]
        totals = kernel.sum(axis=1)
        # Seeds stranded in zero-density regions stop where they are.
        stranded = totals <= 0
        shifted = np.where(
            stranded[:, None],
            current,
            kernel @ points / np.maximum(totals, 1e-300)[:, None],
        )
        moved = np.linalg.norm(shifted - current, axis=1)
        seeds[active] = shifted
        still_active = (moved >= tol) & ~stranded
        active_indices = np.nonzero(active)[0]
        active[active_indices[~still_active]] = False

    if stats is not None:
        stats["sweeps"] = sweeps
        stats["n_seeds"] = len(seeds)
    densities = _density_at(seeds, points, weights, bandwidth) / total_weight
    return seeds, densities


def _density_at(
    locations: np.ndarray,
    points: np.ndarray,
    weights: np.ndarray,
    bandwidth: float,
) -> np.ndarray:
    """Weighted (unnormalized-kernel) density at each location."""
    sq = (
        np.sum(locations * locations, axis=1)[:, None]
        - 2.0 * locations @ points.T
        + np.sum(points * points, axis=1)[None, :]
    )
    kernel = np.exp(-0.5 * sq / (bandwidth * bandwidth))
    return kernel @ weights


def select_seeds(
    points: np.ndarray,
    weights: np.ndarray,
    n_seeds: int,
    rng: Optional[np.random.Generator] = None,
) -> np.ndarray:
    """Pick mean-shift seeds from the particle population.

    Half the seeds are the highest-weight particles (they sit near modes
    already); the rest are a uniform subsample for coverage, so a nascent
    cluster that has density but no weight spike still attracts a seed.
    Deterministic when ``rng`` is None (evenly strided subsample).
    """
    n = len(points)
    if n_seeds >= n:
        return points.copy()
    n_top = n_seeds // 2
    top = np.argsort(weights)[-n_top:] if n_top > 0 else np.array([], dtype=int)
    n_rest = n_seeds - len(top)
    if rng is None:
        rest = np.linspace(0, n - 1, n_rest).astype(int)
    else:
        rest = rng.choice(n, size=n_rest, replace=False)
    idx = np.unique(np.concatenate((top, rest)))
    return points[idx].copy()
