"""Movement models for the prediction step (Section V-B).

The paper's sources are static, so its prediction step is the identity
(``P'' = P'``), but the formulation explicitly allows a movement model
``F_movement: A -> A``.  This module provides the standard choices for the
mobile-source extension exercised by ``examples/moving_source.py``:

* :class:`StaticModel` -- the paper's identity prediction.
* :class:`RandomWalkModel` -- isotropic Gaussian diffusion; the right
  model when only a speed scale is known.
* :class:`DriftModel` -- constant-velocity drift plus diffusion; for
  sources on a known transport corridor (vehicle on a road).

A movement model is a callable ``(xs, ys, strengths, rng) -> (xs, ys,
strengths)`` applied to the fusion-range subset before weighting; the
classes below are such callables with validated parameters.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

Arrays = Tuple[np.ndarray, np.ndarray, np.ndarray]


class StaticModel:
    """Identity prediction: sources do not move (the paper's setting)."""

    def __call__(
        self,
        xs: np.ndarray,
        ys: np.ndarray,
        strengths: np.ndarray,
        rng: np.random.Generator,
    ) -> Arrays:
        return xs, ys, strengths

    def __repr__(self) -> str:
        return "StaticModel()"


class RandomWalkModel:
    """Isotropic Gaussian diffusion of position hypotheses.

    ``sigma`` is the per-iteration standard deviation (length units).  For
    a source moving at most ``v`` units per time step observed by ``n``
    sensors, ``sigma ~ v / sqrt(n)`` keeps the cloud diffusing at the
    source's speed over one time step.
    """

    def __init__(self, sigma: float):
        if sigma < 0:
            raise ValueError(f"sigma must be non-negative, got {sigma}")
        self.sigma = float(sigma)

    def __call__(
        self,
        xs: np.ndarray,
        ys: np.ndarray,
        strengths: np.ndarray,
        rng: np.random.Generator,
    ) -> Arrays:
        if self.sigma == 0:
            return xs, ys, strengths
        n = len(xs)
        return (
            xs + rng.normal(0.0, self.sigma, n),
            ys + rng.normal(0.0, self.sigma, n),
            strengths,
        )

    def __repr__(self) -> str:
        return f"RandomWalkModel(sigma={self.sigma})"


class DriftModel:
    """Constant drift plus diffusion.

    Every hypothesis moves by ``(vx, vy)`` per iteration with Gaussian
    diffusion ``sigma`` on top.  Note this drifts *all* hypotheses --
    appropriate when every candidate source shares the transport (e.g.
    the whole scene is observed from a moving platform), not for mixing
    static and mobile sources (use :class:`RandomWalkModel` there and let
    the likelihood anchor the static clusters).
    """

    def __init__(self, vx: float, vy: float, sigma: float = 0.0):
        if sigma < 0:
            raise ValueError(f"sigma must be non-negative, got {sigma}")
        self.vx = float(vx)
        self.vy = float(vy)
        self.sigma = float(sigma)

    def __call__(
        self,
        xs: np.ndarray,
        ys: np.ndarray,
        strengths: np.ndarray,
        rng: np.random.Generator,
    ) -> Arrays:
        n = len(xs)
        new_xs = xs + self.vx
        new_ys = ys + self.vy
        if self.sigma > 0:
            new_xs = new_xs + rng.normal(0.0, self.sigma, n)
            new_ys = new_ys + rng.normal(0.0, self.sigma, n)
        return new_xs, new_ys, strengths

    def __repr__(self) -> str:
        return f"DriftModel(vx={self.vx}, vy={self.vy}, sigma={self.sigma})"
