"""Process-parallel mean-shift (the paper's Section VI-E concurrency).

The paper reports that "the majority of the concurrency is achieved using
the mean-shift technique" and shows ~5x speedup from 4 to 24 cores
(Table I).  Our mean-shift is already BLAS-vectorized, so single-process
throughput is high; this module adds the explicit multi-core dimension by
sharding the mean-shift *seeds* across worker processes.  Each seed ascends
independently, so the computation is embarrassingly parallel, exactly as
the paper exploits.

Note the realistic trade-off this exposes (and the Table I benchmark
measures): for small populations the fork/pickle overhead exceeds the
gain, while for 15000-particle populations with many seeds the sharded run
wins -- the same "parallelism pays off at scale" shape as the paper's 4-
vs 24-core columns.
"""

from __future__ import annotations

from concurrent.futures import Future, ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Callable, Iterable, List, Optional, Tuple

import numpy as np

from repro.core.meanshift import mean_shift_modes


class WorkerPool:
    """A persistent, lazily-built, self-repairing process pool.

    Generalizes the lifecycle that :class:`MeanShiftPool` proved out so any
    subsystem (mean-shift sharding, the experiment engine in
    :mod:`repro.exp`) can own one long-lived pool:

    * the executor is created on first use, not at construction, so a pool
      configured but never exercised costs nothing;
    * :meth:`run_batch` transparently rebuilds the executor once and
      retries if its workers died between calls (``BrokenProcessPool``);
    * :meth:`discard` tears the executor down *without waiting* -- the
      recovery path for stuck or killed workers -- while :meth:`close`
      shuts down cleanly.  Either way the pool stays usable: the next
      call builds a fresh executor.

    An optional ``tracer`` (any object with an ``emit(type, **fields)``
    method and an ``enabled`` flag, i.e. :class:`repro.obs.trace.Tracer`)
    records the pool's lifecycle -- ``pool_build`` / ``pool_discard`` /
    ``pool_close`` events tagged with the build count -- so a merged
    sweep trace shows exactly when the pool was rebuilt and why results
    arrived in the order they did.
    """

    def __init__(
        self,
        n_workers: int,
        initializer=None,
        initargs: tuple = (),
        tracer=None,
    ):
        if n_workers < 1:
            raise ValueError(f"WorkerPool needs n_workers >= 1, got {n_workers}")
        self.n_workers = int(n_workers)
        self._initializer = initializer
        self._initargs = initargs
        self._executor: Optional[ProcessPoolExecutor] = None
        self.tracer = tracer
        #: Executors created so far (1 after first use; +1 per repair).
        self.builds = 0

    def _emit(self, event: str, **fields) -> None:
        if self.tracer is not None and getattr(self.tracer, "enabled", False):
            self.tracer.emit(event, n_workers=self.n_workers, **fields)

    def executor(self) -> ProcessPoolExecutor:
        """The live executor, building it on first use."""
        if self._executor is None:
            self._executor = ProcessPoolExecutor(
                max_workers=self.n_workers,
                initializer=self._initializer,
                initargs=self._initargs,
            )
            self.builds += 1
            self._emit("pool_build", build=self.builds)
        return self._executor

    def submit(self, fn: Callable, *args, **kwargs) -> Future:
        return self.executor().submit(fn, *args, **kwargs)

    def run_batch(self, fn: Callable, payloads: Iterable) -> List:
        """``map(fn, payloads)`` with a single rebuild-and-retry on breakage."""
        payloads = list(payloads)
        try:
            return list(self.executor().map(fn, payloads))
        except BrokenProcessPool:
            # Workers died between calls; rebuild once and retry.
            self.discard()
            return list(self.executor().map(fn, payloads))

    #: Grace period between SIGTERM and SIGKILL in :meth:`discard`.
    KILL_DEADLINE_SECONDS = 2.0

    def discard(self, kill_deadline: Optional[float] = None) -> None:
        """Drop the executor without waiting for in-flight work.

        Used to recover from hung or killed workers: pending futures are
        cancelled and worker processes still running a task are escalated
        through a hard-kill deadline -- ``terminate()`` (SIGTERM), a
        bounded ``join``, then ``kill()`` (SIGKILL) for anything that
        ignored the polite signal -- and finally reaped, so a discard can
        neither hang on a SIGTERM-blocking worker nor leak zombies.  The
        next call builds a fresh executor.
        """
        if self._executor is None:
            return
        if kill_deadline is None:
            kill_deadline = self.KILL_DEADLINE_SECONDS
        executor, self._executor = self._executor, None
        processes = list(getattr(executor, "_processes", {}).values())
        executor.shutdown(wait=False, cancel_futures=True)
        terminated = 0
        for process in processes:
            if process.is_alive():
                process.terminate()
                terminated += 1
        killed = 0
        deadline_each = kill_deadline / max(1, terminated) if terminated else 0.0
        for process in processes:
            process.join(timeout=deadline_each)
            if process.is_alive():
                process.kill()
                killed += 1
        for process in processes:
            # Post-SIGKILL join cannot block; it reaps the zombie.
            process.join()
        self._emit(
            "pool_discard",
            build=self.builds,
            terminated=terminated,
            killed=killed,
        )

    def close(self) -> None:
        """Shut the executor down cleanly (the pool can be reused)."""
        if self._executor is not None:
            self._executor.shutdown()
            self._executor = None
            self._emit("pool_close", build=self.builds)

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        state = "live" if self._executor is not None else "idle"
        return f"WorkerPool(n_workers={self.n_workers}, {state}, builds={self.builds})"

# Worker state initialized once per process to avoid re-pickling the
# particle arrays for every chunk.
_WORKER_DATA: dict = {}


def _init_worker(points: np.ndarray, weights: np.ndarray) -> None:
    _WORKER_DATA["points"] = points
    _WORKER_DATA["weights"] = weights


def _run_chunk(args: Tuple[np.ndarray, float, float, int]) -> Tuple[np.ndarray, np.ndarray]:
    seeds, bandwidth, tol, max_iter = args
    return mean_shift_modes(
        seeds,
        _WORKER_DATA["points"],
        _WORKER_DATA["weights"],
        bandwidth=bandwidth,
        tol=tol,
        max_iter=max_iter,
    )


def parallel_mean_shift_modes(
    seeds: np.ndarray,
    points: np.ndarray,
    weights: np.ndarray,
    bandwidth: float,
    tol: float = 1e-2,
    max_iter: int = 100,
    n_workers: int = 2,
    executor: Optional[ProcessPoolExecutor] = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Like :func:`repro.core.meanshift.mean_shift_modes`, sharded over processes.

    Results are identical to the serial version (same seeds, same particle
    data, deterministic iteration); only wall-clock time differs.  Pass a
    pre-built ``executor`` to amortize process start-up across calls; note
    that a reused executor must have been created with the same
    ``points``/``weights`` via :func:`make_executor`.
    """
    seeds = np.atleast_2d(np.asarray(seeds, dtype=float))
    if n_workers < 1:
        raise ValueError(f"n_workers must be >= 1, got {n_workers}")
    if n_workers == 1 or len(seeds) < 2 * n_workers:
        return mean_shift_modes(
            seeds, points, weights, bandwidth=bandwidth, tol=tol, max_iter=max_iter
        )

    chunks = np.array_split(seeds, n_workers)
    args = [(chunk, bandwidth, tol, max_iter) for chunk in chunks if len(chunk)]

    own_executor = executor is None
    if own_executor:
        executor = make_executor(points, weights, n_workers)
    try:
        results = list(executor.map(_run_chunk, args))
    finally:
        if own_executor:
            executor.shutdown()
    modes = np.vstack([r[0] for r in results])
    densities = np.concatenate([r[1] for r in results])
    return modes, densities


def make_executor(
    points: np.ndarray,
    weights: np.ndarray,
    n_workers: int,
) -> ProcessPoolExecutor:
    """A worker pool pre-loaded with the particle arrays."""
    return ProcessPoolExecutor(
        max_workers=n_workers,
        initializer=_init_worker,
        initargs=(np.asarray(points, dtype=float), np.asarray(weights, dtype=float)),
    )


def _run_chunk_with_data(
    args: Tuple[np.ndarray, np.ndarray, np.ndarray, float, float, int],
) -> Tuple[np.ndarray, np.ndarray]:
    seeds, points, weights, bandwidth, tol, max_iter = args
    return mean_shift_modes(
        seeds, points, weights, bandwidth=bandwidth, tol=tol, max_iter=max_iter
    )


class MeanShiftPool:
    """A persistent, lazily-built process pool for mean-shift extraction.

    :func:`make_executor` bakes one particle snapshot into the workers,
    which suits a single extraction but not a localizer whose population
    mutates every iteration.  This pool instead ships the current
    ``points`` / ``weights`` with each call, amortizing only the process
    start-up (the expensive part) across calls.  The executor is created
    on first use and transparently rebuilt once if its workers died (e.g.
    killed between calls), which is what lets a long-lived localizer own
    one pool for its whole lifetime.

    Results are bit-identical to the serial :func:`mean_shift_modes`:
    workers run the same dense kernel on disjoint seed shards, and shard
    order is preserved on reassembly.
    """

    def __init__(self, n_workers: int):
        if n_workers < 2:
            raise ValueError(f"MeanShiftPool needs n_workers >= 2, got {n_workers}")
        self.n_workers = int(n_workers)
        self._pool = WorkerPool(self.n_workers)

    @property
    def builds(self) -> int:
        """Executors created so far (1 after first use; +1 per repair)."""
        return self._pool.builds

    def run(
        self,
        seeds: np.ndarray,
        points: np.ndarray,
        weights: np.ndarray,
        bandwidth: float,
        tol: float = 1e-2,
        max_iter: int = 100,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Sharded :func:`mean_shift_modes`; serial below 2 seeds/worker."""
        seeds = np.atleast_2d(np.asarray(seeds, dtype=float))
        if len(seeds) < 2 * self.n_workers:
            return mean_shift_modes(
                seeds, points, weights, bandwidth=bandwidth, tol=tol, max_iter=max_iter
            )
        points = np.asarray(points, dtype=float)
        weights = np.asarray(weights, dtype=float)
        chunks = np.array_split(seeds, self.n_workers)
        args = [
            (chunk, points, weights, bandwidth, tol, max_iter)
            for chunk in chunks
            if len(chunk)
        ]
        results = self._pool.run_batch(_run_chunk_with_data, args)
        modes = np.vstack([r[0] for r in results])
        densities = np.concatenate([r[1] for r in results])
        return modes, densities

    def close(self) -> None:
        """Shut the executor down (the pool can be reused; it rebuilds)."""
        self._pool.close()

    def __enter__(self) -> "MeanShiftPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        state = "live" if self._pool._executor is not None else "idle"
        return f"MeanShiftPool(n_workers={self.n_workers}, {state})"
