"""Fusion range policies.

The fusion range ``d_i`` (Eq. 5) bounds which particles a sensor's
measurement may touch.  The paper selects ``d_i`` so that any particle is
within range of "a handful of sensors"; for the uniform grids it uses a
single constant (28 for the 6x6 grid with spacing 20).  For irregular
deployments (Scenario C) a per-sensor value makes more sense, so the policy
is an object consulted per sensor.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from typing import Dict, Sequence, Tuple


class FusionRangePolicy(ABC):
    """Maps a reporting sensor to its fusion range ``d_i``."""

    @abstractmethod
    def range_for(self, sensor_id: int, x: float, y: float) -> float:
        """Fusion range for the sensor with the given id and location."""


class FixedFusionRange(FusionRangePolicy):
    """The same ``d`` for every sensor (the paper's grid scenarios)."""

    def __init__(self, d: float):
        if d <= 0:
            raise ValueError(f"fusion range must be positive, got {d}")
        self.d = float(d)

    def range_for(self, sensor_id: int, x: float, y: float) -> float:
        return self.d

    def __repr__(self) -> str:
        return f"FixedFusionRange({self.d})"


class InfiniteFusionRange(FusionRangePolicy):
    """No selection -- every measurement touches every particle.

    This degrades the algorithm to a classic single-population particle
    filter and reproduces the oscillation of Fig. 2; it exists for that
    ablation.
    """

    def range_for(self, sensor_id: int, x: float, y: float) -> float:
        return math.inf

    def __repr__(self) -> str:
        return "InfiniteFusionRange()"


class AutoFusionRange(FusionRangePolicy):
    """Per-sensor range: the distance to the k-th nearest other sensor.

    Choosing ``k`` around 3-5 realizes the paper's "handful of sensors"
    rule on arbitrary (e.g. Poisson-placed) deployments.  A multiplicative
    ``slack`` (> 1) guarantees overlapping coverage between neighbouring
    sensors' discs.
    """

    def __init__(
        self,
        sensor_positions: Sequence[Tuple[float, float]],
        k: int = 3,
        slack: float = 1.05,
    ):
        if len(sensor_positions) < 2:
            raise ValueError("AutoFusionRange needs at least two sensors")
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        if slack <= 0:
            raise ValueError(f"slack must be positive, got {slack}")
        # Init args are kept as attributes so the checkpoint codec can
        # reconstruct an equivalent policy (``k`` is the requested value,
        # pre-clamp).
        self.sensor_positions = [
            (float(x), float(y)) for x, y in sensor_positions
        ]
        self.k = int(k)
        self.slack = float(slack)
        k = min(k, len(sensor_positions) - 1)
        self._ranges: Dict[Tuple[float, float], float] = {}
        for i, (xi, yi) in enumerate(sensor_positions):
            dists = sorted(
                math.hypot(xi - xj, yi - yj)
                for j, (xj, yj) in enumerate(sensor_positions)
                if j != i
            )
            self._ranges[(round(xi, 9), round(yi, 9))] = slack * dists[k - 1]
        # Unknown-sensor fallback, computed once: range_for sits on the
        # per-measurement hot path, and re-sorting all ranges on every
        # unknown-sensor call turned a dictionary miss into an O(n log n)
        # scan.
        values = sorted(self._ranges.values())
        self._median_range = values[len(values) // 2]

    def range_for(self, sensor_id: int, x: float, y: float) -> float:
        key = (round(x, 9), round(y, 9))
        try:
            return self._ranges[key]
        except KeyError:
            # Unknown sensor (e.g. added after construction): fall back to
            # the median of the known ranges rather than failing mid-run.
            return self._median_range

    def __repr__(self) -> str:
        return (
            f"AutoFusionRange(n={len(self._ranges)}, "
            f"median={self._median_range:.1f})"
        )
