"""The paper's core contribution: particle filter + mean-shift localization.

The pipeline, per Fig. 1 of the paper, processes **one measurement per
iteration** with no ordering requirement:

1. *Selection* (fusion range): only particles within ``d_i`` of the
   reporting sensor are touched (:mod:`repro.core.fusion`).
2. *Prediction*: sources are static, so prediction is the identity (a
   movement model hook exists for the tracking extension).
3. *Weighting*: the Poisson likelihood of the observed count under each
   particle's single-source hypothesis multiplies its weight
   (:mod:`repro.core.weighting`).
4. *Estimation*: mean-shift over the weighted particles finds every density
   mode; each surviving mode is one source estimate, so the number of
   sources K is never an input (:mod:`repro.core.meanshift`,
   :mod:`repro.core.clustering`, :mod:`repro.core.estimator`).
5. *Resampling*: only the touched particles are resampled, with Gaussian
   jitter on duplicates and a small random-injection fraction for new
   sources (:mod:`repro.core.resampling`).

:class:`repro.core.MultiSourceLocalizer` ties the steps together.
"""

from repro.core.backend import (
    ArrayBackend,
    BackendUnavailableError,
    FastNumpyBackend,
    NumpyBackend,
    ScratchPool,
    available_backends,
    get_backend,
    resolve_backend_name,
)
from repro.core.config import LocalizerConfig
from repro.core.grid import SpatialGridIndex
from repro.core.particles import ParticleSet
from repro.core.fusion import (
    FusionRangePolicy,
    FixedFusionRange,
    AutoFusionRange,
    InfiniteFusionRange,
)
from repro.core.weighting import poisson_log_pmf, reweight_in_place
from repro.core.meanshift import (
    mean_shift,
    mean_shift_modes,
    truncated_mean_shift_modes,
)
from repro.core.parallel import MeanShiftPool
from repro.core.clustering import merge_modes, Mode
from repro.core.estimator import SourceEstimate, extract_estimates
from repro.core.resampling import resample_subset
from repro.core.localizer import MultiSourceLocalizer
from repro.core.movement import DriftModel, RandomWalkModel, StaticModel
from repro.core.diagnostics import (
    ClusterSupport,
    ConvergenceMonitor,
    PopulationHealth,
    cluster_report,
    population_health,
)

__all__ = [
    "ArrayBackend",
    "BackendUnavailableError",
    "FastNumpyBackend",
    "NumpyBackend",
    "ScratchPool",
    "available_backends",
    "get_backend",
    "resolve_backend_name",
    "LocalizerConfig",
    "ParticleSet",
    "FusionRangePolicy",
    "FixedFusionRange",
    "AutoFusionRange",
    "InfiniteFusionRange",
    "SpatialGridIndex",
    "MeanShiftPool",
    "poisson_log_pmf",
    "reweight_in_place",
    "mean_shift",
    "mean_shift_modes",
    "truncated_mean_shift_modes",
    "merge_modes",
    "Mode",
    "SourceEstimate",
    "extract_estimates",
    "resample_subset",
    "MultiSourceLocalizer",
    "StaticModel",
    "RandomWalkModel",
    "DriftModel",
    "ClusterSupport",
    "ConvergenceMonitor",
    "PopulationHealth",
    "cluster_report",
    "population_health",
]
