"""The shared particle population.

Particles are stored structure-of-arrays (positions, strengths, weights as
NumPy arrays) so that selection, weighting, resampling and mean-shift are
all vectorized.  One :class:`ParticleSet` represents hypotheses about *all*
sources at once -- the set never grows with the number of sources, which is
the paper's first headline property.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.core.grid import SpatialGridIndex


class ParticleSet:
    """A weighted population of (x, y, strength) hypotheses.

    The set carries a monotonically increasing **revision counter**: every
    in-place mutation (reweighting, resampling, movement, injection) bumps
    it, which is what lets downstream consumers -- the spatial grid index
    and the localizer's estimate cache -- invalidate themselves lazily
    instead of recomputing per call.  Code that writes the coordinate or
    weight arrays directly must call :meth:`mark_moved` /
    :meth:`mark_reweighted` afterwards.
    """

    def __init__(
        self,
        xs: np.ndarray,
        ys: np.ndarray,
        strengths: np.ndarray,
        weights: Optional[np.ndarray] = None,
    ):
        xs = np.asarray(xs, dtype=float)
        ys = np.asarray(ys, dtype=float)
        strengths = np.asarray(strengths, dtype=float)
        n = len(xs)
        if not (len(ys) == len(strengths) == n):
            raise ValueError(
                f"array length mismatch: xs={n}, ys={len(ys)}, strengths={len(strengths)}"
            )
        if n == 0:
            raise ValueError("a particle set cannot be empty")
        if np.any(strengths < 0):
            raise ValueError("particle strengths must be non-negative")
        if weights is None:
            weights = np.full(n, 1.0 / n)
        else:
            weights = np.asarray(weights, dtype=float)
            if len(weights) != n:
                raise ValueError(f"weights length {len(weights)} != {n}")
            if np.any(weights < 0):
                raise ValueError("particle weights must be non-negative")
        self.xs = xs
        self.ys = ys
        self.strengths = strengths
        self.weights = weights
        self._revision = 0
        self._position_revision = 0
        # Lazily (re)built spatial index: (index, position_revision).
        self._grid: Optional[SpatialGridIndex] = None
        self._grid_revision = -1
        # Dirty-row accumulator between grid syncs: a list of index arrays
        # when every position mutation since the last sync declared its
        # touched rows, or None when any mutation was unbounded (full
        # rebuild required).
        self._dirty: Optional[list] = None
        self._dirty_count = 0
        #: Fraction of the population above which a dirty set triggers a
        #: full rebuild instead of an incremental merge (the merge's
        #: per-row cost overtakes one argsort well before 1.0).  Wired
        #: from ``LocalizerConfig.grid_incremental_threshold``.
        self.grid_incremental_threshold = 0.25
        #: Cumulative grid instrumentation (rebuilds / queries / candidate
        #: counts survive index rebuilds; read by the localizer's metrics).
        #: ``grid_rebuilds`` counts *full* rebuilds; incremental merges
        #: count separately.
        self.grid_rebuilds = 0
        self.grid_incremental_updates = 0
        self.grid_queries = 0
        self.grid_candidates = 0

    # --- construction ---------------------------------------------------------

    @classmethod
    def uniform_random(
        cls,
        n: int,
        area: Tuple[float, float],
        strength_range: Tuple[float, float],
        rng: np.random.Generator,
        strength_init: str = "log",
    ) -> "ParticleSet":
        """The paper's initialization: uniform over the area, no prior.

        Strengths are drawn log-uniformly by default (the hypothesis range
        spans three decades); pass ``strength_init="uniform"`` for a
        literal uniform draw.
        """
        if n < 1:
            raise ValueError(f"need at least one particle, got {n}")
        lo, hi = strength_range
        if not 0 < lo <= hi:
            raise ValueError(f"bad strength range [{lo}, {hi}]")
        xs = rng.uniform(0.0, area[0], size=n)
        ys = rng.uniform(0.0, area[1], size=n)
        if strength_init == "log":
            strengths = np.exp(rng.uniform(np.log(lo), np.log(hi), size=n))
        elif strength_init == "uniform":
            strengths = rng.uniform(lo, hi, size=n)
        else:
            raise ValueError(f"unknown strength_init {strength_init!r}")
        return cls(xs, ys, strengths)

    # --- checkpoint support -------------------------------------------------

    def export_state(self) -> dict:
        """Arrays plus revision counters, for checkpointing.

        The returned arrays are **copies** (a checkpoint must not alias a
        population that keeps mutating).  Revision counters ride along so
        revision-keyed caches (the grid index, the localizer's estimate
        cache) stay valid across a restore.
        """
        return {
            "xs": self.xs.copy(),
            "ys": self.ys.copy(),
            "strengths": self.strengths.copy(),
            "weights": self.weights.copy(),
            "revision": self._revision,
            "position_revision": self._position_revision,
        }

    @classmethod
    def from_state(cls, state: dict) -> "ParticleSet":
        """Rebuild a population from :meth:`export_state` output.

        The spatial grid index is left to rebuild lazily (it is an exact
        function of positions); grid instrumentation counters start at
        zero in the restored set.
        """
        particles = cls(
            np.asarray(state["xs"], dtype=float),
            np.asarray(state["ys"], dtype=float),
            np.asarray(state["strengths"], dtype=float),
            np.asarray(state["weights"], dtype=float),
        )
        particles._revision = int(state["revision"])
        particles._position_revision = int(state["position_revision"])
        return particles

    # --- mutation tracking ------------------------------------------------------

    @property
    def revision(self) -> int:
        """Bumped by every in-place mutation; keys downstream caches."""
        return self._revision

    def mark_reweighted(self) -> None:
        """Record a weights-only mutation (positions unchanged)."""
        self._revision += 1

    def mark_moved(self, indices: Optional[np.ndarray] = None) -> None:
        """Record a mutation that (possibly) changed particle positions.

        ``indices``, when given, promises the mutation touched *only*
        those rows (a selective resample, a bounded-subset move); the
        cached grid index can then be maintained incrementally instead of
        rebuilt from scratch.  Omit it for unbounded mutations.
        """
        self._revision += 1
        self._position_revision = self._revision
        if indices is None:
            self._dirty = None
            return
        if self._dirty is None:
            return  # already unbounded since the last grid sync
        dirty = np.asarray(indices, dtype=np.int64)
        if dirty is indices:
            dirty = dirty.copy()  # callers may mutate their array later
        self._dirty.append(dirty)
        self._dirty_count += len(dirty)
        if self._dirty_count > 4 * len(self):
            # Memory guard: repeated subset moves without a grid sync in
            # between; the union is headed past the rebuild threshold.
            self._dirty = None

    # --- spatial index -----------------------------------------------------------

    def grid(self, cell_size: float) -> SpatialGridIndex:
        """The spatial index over current positions, maintained lazily.

        When positions changed since the last sync, the cached index is
        re-binned incrementally if every mutation declared its dirty rows
        (:meth:`mark_moved` with ``indices=``) and the dirty fraction
        stays under :attr:`grid_incremental_threshold`; otherwise -- or
        when the merge cannot reproduce a from-scratch build because the
        population's bounding box changed -- it is rebuilt.  Either way
        the returned index is array-equal to a fresh
        :class:`SpatialGridIndex` over current positions.
        """
        index = self._grid
        if index is not None and index.cell_size == cell_size:
            if self._grid_revision == self._position_revision:
                return index
            if self._sync_incrementally(index):
                return index
        index = SpatialGridIndex(self.xs, self.ys, cell_size)
        self._grid = index
        self._grid_revision = self._position_revision
        self.grid_rebuilds += 1
        self._dirty = []
        self._dirty_count = 0
        return index

    def _sync_incrementally(self, index: SpatialGridIndex) -> bool:
        """Try to bring the cached ``index`` current via re-binning."""
        dirty_sets = self._dirty
        if (
            dirty_sets is None
            or index.xs is not self.xs
            or index.ys is not self.ys
        ):
            return False
        if dirty_sets:
            stacked = (
                dirty_sets[0] if len(dirty_sets) == 1 else np.concatenate(dirty_sets)
            )
            dirty = np.unique(stacked)
        else:
            dirty = np.empty(0, dtype=np.int64)
        if len(dirty) > self.grid_incremental_threshold * len(self):
            return False
        if len(dirty) and not index.apply_moves(dirty):
            return False
        self._grid_revision = self._position_revision
        self._dirty = []
        self._dirty_count = 0
        if len(dirty):
            self.grid_incremental_updates += 1
        return True

    def fresh_grid(self) -> Optional[SpatialGridIndex]:
        """The cached index, only when it matches current positions.

        Never builds: callers that merely *prefer* grid acceleration (the
        diagnostics disc scans) use this to reuse an index the hot path
        already paid for, falling back to brute force otherwise.
        """
        index = self._grid
        if index is not None and self._grid_revision == self._position_revision:
            return index
        return None

    def indices_within_grid(
        self, x: float, y: float, radius: float, cell_size: float
    ) -> np.ndarray:
        """Grid-accelerated :meth:`indices_within` (bit-identical result).

        Scans only the cells overlapping the query disc instead of all N
        particles; returns the same sorted index array as the brute-force
        scan.
        """
        index = self.grid(cell_size)
        before = index.candidates_scanned
        selected = index.query_disc(x, y, radius)
        self.grid_queries += 1
        self.grid_candidates += index.candidates_scanned - before
        return selected

    def indices_within_cached(self, x: float, y: float, radius: float) -> np.ndarray:
        """:meth:`indices_within`, served by the cached grid when fresh.

        Bit-identical either way -- the grid's exact disc query matches
        the brute-force scan -- but skips the O(N) sweep whenever an index
        the hot path already built is still current.  Never forces a
        build.
        """
        index = self.fresh_grid()
        if index is None:
            return self.indices_within(x, y, radius)
        before = index.candidates_scanned
        selected = index.query_disc(x, y, radius)
        self.grid_queries += 1
        self.grid_candidates += index.candidates_scanned - before
        return selected

    # --- basic queries -----------------------------------------------------------

    def __len__(self) -> int:
        return len(self.xs)

    @property
    def positions(self) -> np.ndarray:
        """(N, 2) array of particle positions (a fresh copy)."""
        return np.column_stack((self.xs, self.ys))

    def total_weight(self) -> float:
        return float(self.weights.sum())

    def normalize(self) -> None:
        """Scale weights to sum to one; falls back to uniform if degenerate."""
        total = self.weights.sum()
        if total <= 0 or not np.isfinite(total):
            self.weights.fill(1.0 / len(self))
        else:
            self.weights /= total
        self.mark_reweighted()

    def indices_within(self, x: float, y: float, radius: float) -> np.ndarray:
        """Indices of particles within ``radius`` of (x, y) -- Eq. (5).

        This is the fusion-range selection ``P'``.
        """
        dx = self.xs - x
        dy = self.ys - y
        return np.nonzero(dx * dx + dy * dy <= radius * radius)[0]

    def effective_sample_size(self) -> float:
        """ESS = 1 / sum(w^2) for normalized weights; degeneracy diagnostic."""
        total = self.weights.sum()
        if total <= 0:
            return 0.0
        w = self.weights / total
        return float(1.0 / np.sum(w * w))

    def weighted_mean(self) -> np.ndarray:
        """Weighted mean of (x, y, strength) -- the *centroid* of all
        hypotheses.  For multiple sources this is exactly the wrong answer
        (see Section V-D of the paper); it exists for the single-source
        case and for tests demonstrating why mean-shift is needed."""
        total = self.weights.sum()
        if total <= 0:
            w = np.full(len(self), 1.0 / len(self))
        else:
            w = self.weights / total
        return np.array(
            [
                float(np.dot(w, self.xs)),
                float(np.dot(w, self.ys)),
                float(np.dot(w, self.strengths)),
            ]
        )

    def copy(self) -> "ParticleSet":
        return ParticleSet(
            self.xs.copy(), self.ys.copy(), self.strengths.copy(), self.weights.copy()
        )

    def clip_to_area(
        self, area: Tuple[float, float], indices: Optional[np.ndarray] = None
    ) -> None:
        """Clamp positions into [0, w] x [0, h] (jitter can push them out).

        ``indices`` bounds the clamp to a subset so the mutation stays
        eligible for incremental grid maintenance.
        """
        if indices is None:
            np.clip(self.xs, 0.0, area[0], out=self.xs)
            np.clip(self.ys, 0.0, area[1], out=self.ys)
            self.mark_moved()
        else:
            self.xs[indices] = np.clip(self.xs[indices], 0.0, area[0])
            self.ys[indices] = np.clip(self.ys[indices], 0.0, area[1])
            self.mark_moved(indices=indices)

    def __repr__(self) -> str:
        return (
            f"ParticleSet(n={len(self)}, ess={self.effective_sample_size():.1f}, "
            f"total_weight={self.total_weight():.4f})"
        )
