"""Source parameter estimation: particles -> source estimates.

Runs batch mean-shift over the particle positions, merges the converged
seeds into distinct modes, and filters the modes down to source estimates:

* **mass filter** -- the particle weight within twice the bandwidth of the
  mode must exceed ``mode_mass_ratio`` times what a uniform spread would
  put there.  A uniform (ignorant) population produces shallow modes
  everywhere; this is what makes the early time steps report few or noisy
  estimates rather than one estimate per seed.
* **strength filter** -- the mode's local mean strength hypothesis must
  exceed ``min_estimate_strength``.  In source-free regions the surviving
  hypotheses collapse toward zero strength (a reading of pure background is
  best explained by "no source"), so this filter is the main false-positive
  killer; it is also why very weak (4 uCi) sources are the hard case,
  exactly as the paper reports.

Each surviving mode becomes a :class:`SourceEstimate` with position,
strength (local weighted mean) and diagnostic scores.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from time import perf_counter
from typing import List, Optional, Tuple

import numpy as np

from repro.core.clustering import Mode, merge_modes
from repro.core.config import LocalizerConfig
from repro.core.meanshift import (
    mean_shift_modes,
    select_seeds,
    truncated_mean_shift_modes,
)
from repro.core.particles import ParticleSet
from repro.obs.trace import NULL_TRACER, Tracer


@dataclass(frozen=True)
class SourceEstimate:
    """One estimated radiation source."""

    x: float
    y: float
    strength: float
    #: Fraction of total particle weight within 2 * bandwidth of the mode.
    mass: float
    #: mass / (uniform-spread mass for the same disc): > 1 means denser
    #: than noise; the estimator's threshold is config.mode_mass_ratio.
    mass_ratio: float
    #: Number of mean-shift seeds that converged to this mode.
    seed_count: int

    @property
    def position(self) -> Tuple[float, float]:
        return (self.x, self.y)

    def position_array(self) -> np.ndarray:
        return np.array([self.x, self.y])

    def distance_to(self, x: float, y: float) -> float:
        return math.hypot(self.x - x, self.y - y)

    def __str__(self) -> str:
        return (
            f"Estimate(({self.x:.1f}, {self.y:.1f}), {self.strength:.1f} uCi, "
            f"mass={self.mass:.3f}, ratio={self.mass_ratio:.2f})"
        )


def disc_mass(
    particles: ParticleSet,
    x: float,
    y: float,
    radius: float,
    indices: Optional[np.ndarray] = None,
) -> float:
    """Normalized particle weight within ``radius`` of (x, y).

    Pass ``indices`` (a precomputed ``indices_within`` result for the same
    disc) to skip the selection scan -- the estimator shares one query per
    mode between this and :func:`local_strength`.
    """
    total = particles.weights.sum()
    if total <= 0:
        return 0.0
    idx = particles.indices_within(x, y, radius) if indices is None else indices
    return float(particles.weights[idx].sum() / total)


def weighted_median(values: np.ndarray, weights: np.ndarray) -> float:
    """The 50 % weighted quantile of ``values``."""
    values = np.asarray(values, dtype=float)
    weights = np.asarray(weights, dtype=float)
    if len(values) == 0:
        raise ValueError("weighted_median of empty values")
    order = np.argsort(values)
    cum = np.cumsum(weights[order])
    total = cum[-1]
    if total <= 0:
        return float(np.median(values))
    return float(values[order][np.searchsorted(cum, 0.5 * total)])


def local_strength(
    particles: ParticleSet,
    x: float,
    y: float,
    radius: float,
    indices: Optional[np.ndarray] = None,
) -> float:
    """Robust local strength hypothesis: the weighted median near (x, y).

    The median, not the mean: the resampler continuously injects fresh
    random particles whose strengths are drawn from the full (log-uniform)
    hypothesis range, and a mean would let a handful of those contaminants
    drag a collapsed (no-source) region back above the strength filter.

    As with :func:`disc_mass`, ``indices`` short-circuits the disc scan.
    """
    idx = particles.indices_within(x, y, radius) if indices is None else indices
    if len(idx) == 0:
        return 0.0
    return weighted_median(particles.strengths[idx], particles.weights[idx])


def extract_estimates(
    particles: ParticleSet,
    config: LocalizerConfig,
    rng: Optional[np.random.Generator] = None,
    tracer: Optional[Tracer] = None,
    pool=None,
    backend=None,
) -> List[SourceEstimate]:
    """The full Section V-D step: mean-shift, merge, filter, estimate.

    Never needs (or produces) an assumed number of sources: every mode
    that survives the mass and strength filters is one estimated source.

    The mean-shift sweep runs on one of four interchangeable paths,
    chosen from the config's fast-path knobs (see docs/PERFORMANCE.md):
    a ``pool`` (:class:`repro.core.parallel.MeanShiftPool`, exact,
    process-sharded), an accelerated array ``backend``
    (:mod:`repro.core.backend`, padded-SoA sweep, tolerance parity), the
    grid-based truncated kernel (tight approximation, large populations
    only), or the dense reference sweep.  ``backend=None`` resolves one
    from ``config.backend``; the localizer passes its own instance so
    scratch buffers persist across calls.

    With an enabled ``tracer``, one ``extract`` event is emitted carrying
    seed / sweep / mode counts, the backend (``path``), and per-phase
    wall-clock seconds (``seed``, ``shift``, ``merge``, ``filter``).
    """
    tracer = NULL_TRACER if tracer is None else tracer
    traced = tracer.enabled
    if backend is None:
        from repro.core.backend import get_backend

        backend = get_backend(config.backend)
    positions = particles.positions
    weights = particles.weights
    if weights.sum() <= 0:
        return []

    if traced:
        phases = {}
        t_start = t_prev = perf_counter()
        shift_stats: Optional[dict] = {}
    else:
        shift_stats = None
    seeds = select_seeds(positions, weights, config.meanshift_seeds, rng)
    if traced:
        t_now = perf_counter()
        phases["seed"] = t_now - t_prev
        t_prev = t_now
    n = len(particles)
    use_truncated = (
        config.meanshift_truncation_sigmas > 0
        and n >= config.meanshift_truncation_min_particles
    )
    use_grid = config.use_grid_index
    if pool is not None:
        path = "parallel"
        converged, _densities = pool.run(
            seeds,
            positions,
            weights,
            bandwidth=config.bandwidth,
            tol=config.meanshift_tol,
            max_iter=config.meanshift_max_iter,
        )
        if shift_stats is not None:
            shift_stats["n_seeds"] = len(seeds)
    elif backend.accelerated:
        path = f"backend:{backend.name}"
        converged, _densities = backend.meanshift_modes(
            particles, seeds, config, stats=shift_stats
        )
    elif use_truncated:
        path = "truncated"
        converged, _densities = truncated_mean_shift_modes(
            seeds,
            positions,
            weights,
            bandwidth=config.bandwidth,
            grid=particles.grid(config.grid_cell()),
            truncation_sigmas=config.meanshift_truncation_sigmas,
            tol=config.meanshift_tol,
            max_iter=config.meanshift_max_iter,
            tile_candidates=config.meanshift_tile_candidates,
            stats=shift_stats,
        )
    else:
        path = "dense"
        converged, _densities = mean_shift_modes(
            seeds,
            positions,
            weights,
            bandwidth=config.bandwidth,
            tol=config.meanshift_tol,
            max_iter=config.meanshift_max_iter,
            stats=shift_stats,
        )
    if traced:
        t_now = perf_counter()
        phases["shift"] = t_now - t_prev
        t_prev = t_now
    modes: List[Mode] = merge_modes(converged, _densities, config.mode_merge_radius)
    if traced:
        t_now = perf_counter()
        phases["merge"] = t_now - t_prev
        t_prev = t_now

    area = config.area[0] * config.area[1]
    # One bandwidth, not more: a converged cluster is bandwidth-tight, and
    # a wider support disc dilutes its mass ratio toward the uniform
    # baseline, which is exactly the contrast the threshold needs.
    support_radius = config.bandwidth
    uniform_mass = min(1.0, math.pi * support_radius**2 / area)

    # One disc query per mode, shared by the mass and strength filters
    # (identical index set on every path).  Accelerated backends answer
    # all modes with one batched CSR query; the grid path loops the exact
    # scalar query; and the brute-force fallback still reuses a fresh
    # index when one exists (bit-identical -- it only skips the O(N)
    # scan, never changes the result).
    if modes and use_grid and backend.accelerated:
        grid = particles.grid(config.grid_cell())
        before = grid.candidates_scanned
        flat, offsets = backend.multi_disc_query(
            grid,
            np.array([mode.x for mode in modes], dtype=float),
            np.array([mode.y for mode in modes], dtype=float),
            support_radius,
        )
        particles.grid_queries += len(modes)
        particles.grid_candidates += grid.candidates_scanned - before
        support_sets = [
            flat[offsets[i]:offsets[i + 1]] for i in range(len(modes))
        ]
    elif use_grid:
        support_sets = [
            particles.indices_within_grid(
                mode.x, mode.y, support_radius, config.grid_cell()
            )
            for mode in modes
        ]
    else:
        support_sets = [
            particles.indices_within_cached(mode.x, mode.y, support_radius)
            for mode in modes
        ]

    estimates: List[SourceEstimate] = []
    # Hoisted out of disc_mass: one O(N) total-weight sum shared by every
    # mode (the per-mode expression below is op-for-op disc_mass).
    total_w = particles.weights.sum()
    for mode, support_idx in zip(modes, support_sets):
        mass = (
            float(particles.weights[support_idx].sum() / total_w)
            if total_w > 0
            else 0.0
        )
        ratio = mass / uniform_mass if uniform_mass > 0 else 0.0
        if ratio < config.mode_mass_ratio:
            continue
        strength = local_strength(
            particles, mode.x, mode.y, support_radius, indices=support_idx
        )
        if strength < config.min_estimate_strength:
            continue
        estimates.append(
            SourceEstimate(
                x=float(np.clip(mode.x, 0.0, config.area[0])),
                y=float(np.clip(mode.y, 0.0, config.area[1])),
                strength=strength,
                mass=mass,
                mass_ratio=ratio,
                seed_count=mode.seed_count,
            )
        )
    if traced:
        t_end = perf_counter()
        phases["filter"] = t_end - t_prev
        tracer.emit(
            "extract",
            n_seeds=int(shift_stats.get("n_seeds", len(seeds))),
            meanshift_sweeps=int(shift_stats.get("sweeps", 0)),
            n_modes=len(modes),
            n_estimates=len(estimates),
            path=path,
            phases=phases,
            total_seconds=t_end - t_start,
        )
    return estimates
