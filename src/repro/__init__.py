"""repro: multiple radiation source localization (ICDCS 2011 reproduction).

A faithful, self-contained reproduction of

    Chin, Yau, Rao. "Efficient and Robust Localization of Multiple
    Radiation Sources in Complex Environments." ICDCS 2011.

Quickstart::

    import numpy as np
    from repro import (
        LocalizerConfig, MultiSourceLocalizer, RadiationSource,
        RadiationField, SensorNetwork, grid_placement,
    )

    rng = np.random.default_rng(7)
    sources = [RadiationSource(47, 71, 10.0), RadiationSource(81, 42, 10.0)]
    sensors = grid_placement(6, 6, 100, 100, background_cpm=5.0,
                             margin_fraction=0.0)
    network = SensorNetwork(sensors, RadiationField(sources), rng)
    localizer = MultiSourceLocalizer(
        LocalizerConfig(area=(100, 100), assumed_background_cpm=5.0),
        rng=np.random.default_rng(8),
    )
    for t in range(10):
        for m in network.measure_time_step(t):
            localizer.observe(m)
    print(localizer.estimates())

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured record of every table and figure.
"""

import logging as _logging

# Library convention: never configure handlers here.  The CLI (or the
# embedding application) decides where log records go; without that, the
# NullHandler keeps "No handlers could be found" noise away.
_logging.getLogger(__name__).addHandler(_logging.NullHandler())

from repro.core import (
    AutoFusionRange,
    ConvergenceMonitor,
    FixedFusionRange,
    FusionRangePolicy,
    InfiniteFusionRange,
    LocalizerConfig,
    MultiSourceLocalizer,
    ParticleSet,
    SourceEstimate,
    extract_estimates,
)
from repro.eval import (
    MATCH_RADIUS,
    TrackAssociator,
    ospa_distance,
    StepMetrics,
    evaluate_step,
    match_estimates,
)
from repro.network import (
    CommunicationGraph,
    ExponentialLatencyLink,
    MultiHopLink,
    TopologyAwareDelivery,
    InOrderDelivery,
    LossyLink,
    OutOfOrderDelivery,
    PerfectLink,
    ShuffledDelivery,
    UniformLatencyLink,
)
from repro.obs import (
    InMemorySink,
    JsonlSink,
    MetricsRegistry,
    NullSink,
    PhaseTimer,
    Stopwatch,
    Tracer,
    format_trace_report,
    jsonl_tracer,
    summarize_trace,
)
from repro.physics import (
    ConstantBackground,
    Material,
    MATERIALS,
    Obstacle,
    RadiationField,
    RadiationSource,
    expected_cpm,
    free_space_intensity,
    transport_intensity,
)
from repro.sensors import (
    Measurement,
    Sensor,
    SensorNetwork,
    grid_placement,
    poisson_placement,
)
from repro.exp import (
    SweepResult,
    SweepSpec,
    Variant,
    run_sweep,
)
from repro.sim import (
    RepeatedRunResult,
    load_scenario,
    save_scenario,
    RunResult,
    Scenario,
    SimulationRunner,
    run_repeated,
    run_scenario,
    scenario_a,
    scenario_a_three_sources,
    scenario_b,
    scenario_c,
)

__version__ = "1.0.0"

__all__ = [
    "AutoFusionRange",
    "ConvergenceMonitor",
    "TrackAssociator",
    "ospa_distance",
    "CommunicationGraph",
    "MultiHopLink",
    "TopologyAwareDelivery",
    "load_scenario",
    "save_scenario",
    "FixedFusionRange",
    "FusionRangePolicy",
    "InfiniteFusionRange",
    "LocalizerConfig",
    "MultiSourceLocalizer",
    "ParticleSet",
    "SourceEstimate",
    "extract_estimates",
    "MATCH_RADIUS",
    "StepMetrics",
    "evaluate_step",
    "match_estimates",
    "Tracer",
    "NullSink",
    "InMemorySink",
    "JsonlSink",
    "MetricsRegistry",
    "PhaseTimer",
    "Stopwatch",
    "jsonl_tracer",
    "summarize_trace",
    "format_trace_report",
    "ExponentialLatencyLink",
    "InOrderDelivery",
    "LossyLink",
    "OutOfOrderDelivery",
    "PerfectLink",
    "ShuffledDelivery",
    "UniformLatencyLink",
    "ConstantBackground",
    "Material",
    "MATERIALS",
    "Obstacle",
    "RadiationField",
    "RadiationSource",
    "expected_cpm",
    "free_space_intensity",
    "transport_intensity",
    "Measurement",
    "Sensor",
    "SensorNetwork",
    "grid_placement",
    "poisson_placement",
    "RepeatedRunResult",
    "RunResult",
    "Scenario",
    "SimulationRunner",
    "run_repeated",
    "run_scenario",
    "run_sweep",
    "SweepResult",
    "SweepSpec",
    "Variant",
    "scenario_a",
    "scenario_a_three_sources",
    "scenario_b",
    "scenario_c",
    "__version__",
]
