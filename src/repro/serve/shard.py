"""Worker-side session host: many localizer sessions in one process.

A serve *shard* is one worker process (a ``WorkerPool(n_workers=1)``)
holding a :class:`ShardHost` -- a dict of live
:class:`~repro.sim.session.LocalizerSession` objects keyed by session
id.  The parent drives them through the picklable module-level
``host_*`` functions below, each a single pool submit: open a session,
advance it N steps, collect its result, evict it to a checkpoint.

Everything the parent needs back crosses the process boundary as plain
JSON-safe dicts (step records via the canonical
:func:`~repro.sim.results.step_record_to_dict` codec), never live
session objects, so a host call's payload is exactly what the chaos
tests compare bitwise.

Self-healing rests on two properties of this layout:

* every hosted session auto-checkpoints (``checkpoint_every`` /
  ``checkpoint_path`` armed at open), so SIGKILLing the worker loses at
  most the steps since the last snapshot;
* :func:`host_open` accepts the same spec for a fresh open and a
  restore -- if the spec's checkpoint file exists, the session resumes
  from it; otherwise it starts from scratch.  Resurrection after a
  worker death is therefore literally "re-submit every open spec to the
  rebuilt pool", and the PR 4/9 resume-parity contract makes the
  replayed tail bitwise-identical to the uninterrupted run.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Any, Dict, List

from repro.sim.serialization import step_record_to_dict
from repro.sim.session import LocalizerSession
from repro.streams.replay import open_replay_session

__all__ = [
    "ShardHost",
    "host_evict",
    "host_list",
    "host_open",
    "host_pid",
    "host_result",
    "host_step",
]


class ShardHost:
    """The in-process registry of hosted sessions (one per shard process)."""

    def __init__(self) -> None:
        self.sessions: Dict[str, LocalizerSession] = {}

    # --- lifecycle -----------------------------------------------------------

    def open(self, session_id: str, spec: Dict[str, Any]) -> Dict[str, Any]:
        """Open (or resume) a session from its spec.

        Spec fields:

        * ``stream_path`` -- replay this ``repro-stream v1`` file
          (mutually exclusive with ``scenario``);
        * ``scenario`` -- a scenario document for a live simulator run;
        * ``seed`` -- run seed (defaults to the stream header's);
        * ``checkpoint_path`` -- where the session snapshots itself;
        * ``checkpoint_every`` -- snapshot cadence in steps (>= 1);
        * ``backend_override`` -- array backend to force (degradation);
        * ``n_particles`` -- particle-count override (degradation;
          applies to fresh opens only, never to a checkpoint resume).

        If ``checkpoint_path`` exists the session resumes from it --
        that one rule is the whole resurrection protocol.
        """
        if session_id in self.sessions:
            raise ValueError(f"session {session_id!r} already hosted")
        checkpoint_path = spec.get("checkpoint_path")
        checkpoint_every = int(spec.get("checkpoint_every", 1))
        backend_override = spec.get("backend_override")
        resumed = False
        if checkpoint_path is not None and Path(checkpoint_path).exists():
            session = LocalizerSession.resume_from_checkpoint(
                checkpoint_path,
                checkpoint_every=checkpoint_every,
                checkpoint_path=checkpoint_path,
                backend_override=backend_override,
                stream_path=spec.get("stream_path"),
            )
            resumed = True
        elif spec.get("stream_path") is not None:
            session = open_replay_session(
                spec["stream_path"],
                seed=spec.get("seed"),
                backend=backend_override,
                checkpoint_every=checkpoint_every,
                checkpoint_path=checkpoint_path,
            )
        else:
            from repro.sim.serialization import scenario_from_dict

            scenario = scenario_from_dict(spec["scenario"])
            if backend_override is not None:
                import dataclasses

                scenario = dataclasses.replace(
                    scenario,
                    localizer_config=dataclasses.replace(
                        scenario.localizer_config, backend=backend_override
                    ),
                )
            if spec.get("n_particles") is not None:
                import dataclasses

                scenario = dataclasses.replace(
                    scenario,
                    localizer_config=dataclasses.replace(
                        scenario.localizer_config,
                        n_particles=int(spec["n_particles"]),
                    ),
                )
            session = LocalizerSession(
                scenario,
                seed=int(spec.get("seed", 0)),
                checkpoint_every=checkpoint_every,
                checkpoint_path=checkpoint_path,
            )
        self.sessions[session_id] = session
        return {
            "session_id": session_id,
            "resumed": resumed,
            "step_index": session.step_index,
            "n_time_steps": session.scenario.n_time_steps,
            "finished": session.finished,
            "pid": os.getpid(),
        }

    def step(self, session_id: str, n_steps: int = 1) -> Dict[str, Any]:
        """Advance up to ``n_steps``; stops early at completion."""
        session = self._session(session_id)
        advanced = 0
        while advanced < n_steps and not session.finished:
            session.step()
            advanced += 1
        return {
            "session_id": session_id,
            "advanced": advanced,
            "step_index": session.step_index,
            "finished": session.finished,
            "pid": os.getpid(),
        }

    def result(self, session_id: str) -> Dict[str, Any]:
        """The session's run result as canonical step-record dicts."""
        session = self._session(session_id)
        result = session.result()
        return {
            "session_id": session_id,
            "finished": session.finished,
            "scenario_name": result.scenario_name,
            "source_labels": list(result.source_labels),
            "steps": [step_record_to_dict(r) for r in result.steps],
        }

    def evict(self, session_id: str) -> Dict[str, Any]:
        """Checkpoint the session and drop it from memory."""
        session = self._session(session_id)
        path = session.checkpoint_path
        if path is None:
            raise ValueError(
                f"session {session_id!r} has no checkpoint_path; "
                f"cannot evict without losing state"
            )
        nbytes = session.save_checkpoint(path)
        del self.sessions[session_id]
        return {
            "session_id": session_id,
            "checkpoint_path": str(path),
            "bytes": nbytes,
            "step_index": session.step_index,
        }

    def drop(self, session_id: str) -> bool:
        """Forget a session without checkpointing (completion cleanup)."""
        return self.sessions.pop(session_id, None) is not None

    def list(self) -> List[str]:
        return sorted(self.sessions)

    def _session(self, session_id: str) -> LocalizerSession:
        session = self.sessions.get(session_id)
        if session is None:
            raise KeyError(f"session {session_id!r} not hosted here")
        return session


#: The per-process host instance the module-level functions close over.
#: In a shard worker this lives in the worker process; the inline
#: (process-free) service mode instantiates its own ``ShardHost``
#: objects instead and never touches this global.
_HOST = ShardHost()


def host_open(session_id: str, spec: Dict[str, Any]) -> Dict[str, Any]:
    return _HOST.open(session_id, spec)


def host_step(session_id: str, n_steps: int = 1) -> Dict[str, Any]:
    return _HOST.step(session_id, n_steps)


def host_result(session_id: str) -> Dict[str, Any]:
    return _HOST.result(session_id)


def host_evict(session_id: str) -> Dict[str, Any]:
    return _HOST.evict(session_id)


def host_drop(session_id: str) -> bool:
    return _HOST.drop(session_id)


def host_list() -> List[str]:
    return _HOST.list()


def host_pid() -> int:
    return os.getpid()
