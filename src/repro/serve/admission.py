"""Admission control for the multi-tenant serving front-end.

The load-shedding doctrine (ISSUE PR 10): **reject new work before
degrading existing work, and never hang**.  Every refusal is a typed
:class:`Rejected` value carrying an HTTP-shaped status and a
machine-readable reason -- a caller polling :func:`is_rejected` can
distinguish "come back later" (429/503, ``retry_after`` set) from
"this tenant is quarantined" (503, breaker open) without parsing text.

Three independent gates, applied in order by
:class:`AdmissionController`:

1. **quarantine** -- the tenant's circuit breaker is open (managed by the
   service, surfaced here);
2. **rate** -- a per-tenant :class:`TokenBucket` caps session admissions
   per second, absorbing bursts up to the bucket capacity;
3. **capacity** -- per-tenant and service-wide active-session quotas.

Per-session ingest backpressure is the same shape one level down:
:class:`BoundedQueue` refuses pushes beyond its capacity instead of
growing without bound, so a slow consumer surfaces as typed shedding at
the producer, not as unbounded memory.
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Deque, Dict, Optional, Union

__all__ = [
    "Admitted",
    "AdmissionController",
    "AdmissionConfig",
    "BoundedQueue",
    "QueueFull",
    "Rejected",
    "TokenBucket",
    "is_rejected",
]


@dataclass(frozen=True)
class Admitted:
    """A request that passed every admission gate."""

    session_id: str
    tenant: str
    shard: int

    status: int = 200


@dataclass(frozen=True)
class Rejected:
    """A typed shed decision -- the 503 that never hangs.

    ``reason`` is one of ``"tenant_quarantined"``, ``"rate_limited"``,
    ``"tenant_quota"``, ``"service_capacity"``, ``"queue_full"``.
    ``retry_after`` (seconds) is set when the condition is transient.
    """

    reason: str
    detail: str
    status: int = 503
    retry_after: Optional[float] = None
    tenant: Optional[str] = None


def is_rejected(outcome: Union[Admitted, Rejected]) -> bool:
    return isinstance(outcome, Rejected)


class QueueFull(RuntimeError):
    """Raised by :meth:`BoundedQueue.push` when shedding is refused."""


class BoundedQueue:
    """A FIFO that refuses growth beyond ``capacity`` -- never blocks.

    The property-based invariant (tested in
    ``tests/test_serve_admission.py``): ``depth <= capacity`` holds after
    *any* interleaving of pushes and pops, and a refused push always
    surfaces as an explicit ``False`` (or :class:`QueueFull` from
    :meth:`push_or_raise`), never as a silent drop or a wait.
    """

    def __init__(self, capacity: int):
        if capacity < 1:
            raise ValueError(f"queue capacity must be >= 1, got {capacity}")
        self.capacity = int(capacity)
        self._items: Deque[Any] = deque()
        #: Total pushes refused over the queue's lifetime.
        self.shed = 0

    def push(self, item: Any) -> bool:
        """Append if there is room; return whether the item was taken."""
        if len(self._items) >= self.capacity:
            self.shed += 1
            return False
        self._items.append(item)
        return True

    def push_or_raise(self, item: Any) -> None:
        if not self.push(item):
            raise QueueFull(
                f"queue at capacity {self.capacity}; request shed"
            )

    def pop(self) -> Any:
        if not self._items:
            raise IndexError("pop from empty BoundedQueue")
        return self._items.popleft()

    @property
    def depth(self) -> int:
        return len(self._items)

    def __len__(self) -> int:
        return len(self._items)

    def __bool__(self) -> bool:
        return bool(self._items)


class TokenBucket:
    """Classic token-bucket rate limiter with an injectable clock.

    ``rate`` tokens accrue per second up to ``capacity``; each admission
    costs one token.  With a deterministic ``clock`` the limiter is fully
    reproducible, which is how the property tests pin its arithmetic.
    """

    def __init__(
        self,
        rate: float,
        capacity: float,
        clock: Callable[[], float] = time.monotonic,
    ):
        if rate <= 0:
            raise ValueError(f"rate must be > 0, got {rate}")
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.rate = float(rate)
        self.capacity = float(capacity)
        self._clock = clock
        self._tokens = self.capacity
        self._last = clock()

    def _refill(self) -> None:
        now = self._clock()
        elapsed = max(0.0, now - self._last)
        self._last = now
        self._tokens = min(self.capacity, self._tokens + elapsed * self.rate)

    def try_acquire(self, tokens: float = 1.0) -> bool:
        """Take ``tokens`` if available; never blocks."""
        self._refill()
        if self._tokens >= tokens:
            self._tokens -= tokens
            return True
        return False

    def seconds_until_available(self, tokens: float = 1.0) -> float:
        """How long until ``tokens`` could be acquired (0 if now)."""
        self._refill()
        deficit = tokens - self._tokens
        return max(0.0, deficit / self.rate)

    @property
    def tokens(self) -> float:
        self._refill()
        return self._tokens


@dataclass
class AdmissionConfig:
    """Static limits the controller enforces."""

    #: Service-wide ceiling on concurrently active sessions.
    max_sessions: int = 256
    #: Per-tenant ceiling on concurrently active sessions.
    tenant_max_sessions: int = 32
    #: Per-tenant session admissions per second.
    tenant_rate: float = 50.0
    #: Burst capacity of the per-tenant token bucket.
    tenant_burst: float = 10.0
    #: Ingest-queue capacity for each admitted session.
    ingest_queue_capacity: int = 64

    def __post_init__(self) -> None:
        if self.max_sessions < 1:
            raise ValueError(
                f"max_sessions must be >= 1, got {self.max_sessions}"
            )
        if self.tenant_max_sessions < 1:
            raise ValueError(
                f"tenant_max_sessions must be >= 1, "
                f"got {self.tenant_max_sessions}"
            )


@dataclass
class _TenantState:
    active: int = 0
    bucket: Optional[TokenBucket] = None
    quarantined: bool = False
    quarantine_until: Optional[float] = None
    admitted: int = 0
    rejected: int = 0
    queues: Dict[str, BoundedQueue] = field(default_factory=dict)


class AdmissionController:
    """Applies the quarantine -> rate -> capacity gates for one service.

    Pure and synchronous by design: the asyncio front-end calls it under
    its own locking, and property-based tests drive it with a fake clock.
    The controller owns each admitted session's bounded ingest queue, so
    queue shedding is counted next to admission shedding.
    """

    def __init__(
        self,
        config: Optional[AdmissionConfig] = None,
        clock: Callable[[], float] = time.monotonic,
    ):
        self.config = config or AdmissionConfig()
        self._clock = clock
        self._tenants: Dict[str, _TenantState] = {}
        self._active_total = 0
        self._session_tenant: Dict[str, str] = {}

    # --- gates ---------------------------------------------------------------

    def _tenant(self, tenant: str) -> _TenantState:
        state = self._tenants.get(tenant)
        if state is None:
            state = _TenantState(
                bucket=TokenBucket(
                    rate=self.config.tenant_rate,
                    capacity=self.config.tenant_burst,
                    clock=self._clock,
                )
            )
            self._tenants[tenant] = state
        return state

    def admit(
        self, tenant: str, session_id: str, shard: int = 0
    ) -> Union[Admitted, Rejected]:
        """One session admission decision; never blocks, never raises."""
        state = self._tenant(tenant)
        if self.tenant_quarantined(tenant):
            state.rejected += 1
            retry = None
            if state.quarantine_until is not None:
                retry = max(0.0, state.quarantine_until - self._clock())
            return Rejected(
                reason="tenant_quarantined",
                detail=f"tenant {tenant!r} is quarantined (breaker open)",
                retry_after=retry,
                tenant=tenant,
            )
        if not state.bucket.try_acquire():
            state.rejected += 1
            return Rejected(
                reason="rate_limited",
                detail=(
                    f"tenant {tenant!r} exceeded "
                    f"{self.config.tenant_rate}/s admissions"
                ),
                status=429,
                retry_after=state.bucket.seconds_until_available(),
                tenant=tenant,
            )
        if state.active >= self.config.tenant_max_sessions:
            state.rejected += 1
            return Rejected(
                reason="tenant_quota",
                detail=(
                    f"tenant {tenant!r} already holds {state.active} of "
                    f"{self.config.tenant_max_sessions} sessions"
                ),
                tenant=tenant,
            )
        if self._active_total >= self.config.max_sessions:
            state.rejected += 1
            return Rejected(
                reason="service_capacity",
                detail=(
                    f"service at capacity "
                    f"({self._active_total}/{self.config.max_sessions} "
                    f"sessions)"
                ),
                tenant=tenant,
            )
        state.active += 1
        state.admitted += 1
        self._active_total += 1
        self._session_tenant[session_id] = tenant
        state.queues[session_id] = BoundedQueue(
            self.config.ingest_queue_capacity
        )
        return Admitted(session_id=session_id, tenant=tenant, shard=shard)

    def release(self, session_id: str) -> None:
        """Free a session's slot (eviction or completion)."""
        tenant = self._session_tenant.pop(session_id, None)
        if tenant is None:
            return
        state = self._tenants[tenant]
        state.active = max(0, state.active - 1)
        state.queues.pop(session_id, None)
        self._active_total = max(0, self._active_total - 1)

    def queue(self, session_id: str) -> Optional[BoundedQueue]:
        tenant = self._session_tenant.get(session_id)
        if tenant is None:
            return None
        return self._tenants[tenant].queues.get(session_id)

    # --- quarantine ----------------------------------------------------------

    def quarantine(
        self, tenant: str, duration: Optional[float] = None
    ) -> None:
        """Trip a tenant into quarantine (breaker open)."""
        state = self._tenant(tenant)
        state.quarantined = True
        state.quarantine_until = (
            self._clock() + duration if duration is not None else None
        )

    def lift_quarantine(self, tenant: str) -> None:
        state = self._tenant(tenant)
        state.quarantined = False
        state.quarantine_until = None

    def tenant_quarantined(self, tenant: str) -> bool:
        state = self._tenants.get(tenant)
        if state is None or not state.quarantined:
            return False
        if (
            state.quarantine_until is not None
            and self._clock() >= state.quarantine_until
        ):
            state.quarantined = False
            state.quarantine_until = None
            return False
        return True

    # --- introspection -------------------------------------------------------

    @property
    def active_sessions(self) -> int:
        return self._active_total

    def tenant_active(self, tenant: str) -> int:
        state = self._tenants.get(tenant)
        return state.active if state is not None else 0

    def snapshot(self) -> Dict[str, Any]:
        """Health-endpoint view of the admission state."""
        return {
            "active_sessions": self._active_total,
            "max_sessions": self.config.max_sessions,
            "tenants": {
                name: {
                    "active": state.active,
                    "admitted": state.admitted,
                    "rejected": state.rejected,
                    "quarantined": self.tenant_quarantined(name),
                    "queue_depths": {
                        sid: q.depth for sid, q in state.queues.items()
                    },
                }
                for name, state in self._tenants.items()
            },
        }
