"""Multi-tenant serving front-end for streaming localization sessions.

* :mod:`repro.serve.admission` -- quotas, token-bucket rate limits,
  bounded ingest queues, typed load shedding.
* :mod:`repro.serve.breaker` -- per-tenant circuit breakers and the
  deterministic exponential retry schedule.
* :mod:`repro.serve.shard` -- the worker-side session host (many
  sessions per process, checkpoint-backed).
* :mod:`repro.serve.service` -- the asyncio supervision tree tying it
  together: deadlines, retries, resurrection, graceful degradation,
  health endpoints.

See ``docs/SERVING.md`` for the architecture and failure doctrine.
"""

from repro.serve.admission import (
    AdmissionConfig,
    AdmissionController,
    Admitted,
    BoundedQueue,
    QueueFull,
    Rejected,
    TokenBucket,
    is_rejected,
)
from repro.serve.breaker import (
    BreakerBoard,
    CircuitBreaker,
    step_backoff_seconds,
)
from repro.serve.service import (
    LocalizationService,
    ServiceConfig,
    SessionHandle,
    StepFailed,
)
from repro.serve.shard import ShardHost

__all__ = [
    "AdmissionConfig",
    "AdmissionController",
    "Admitted",
    "BoundedQueue",
    "BreakerBoard",
    "CircuitBreaker",
    "LocalizationService",
    "QueueFull",
    "Rejected",
    "ServiceConfig",
    "SessionHandle",
    "ShardHost",
    "StepFailed",
    "TokenBucket",
    "is_rejected",
    "step_backoff_seconds",
]
