"""Per-tenant circuit breakers for the serving front-end.

A tenant whose sessions keep failing their steps is tripped into
quarantine instead of being allowed to grind the shared worker pool:
the breaker opens after ``failure_threshold`` consecutive failures,
admission control rejects the tenant while it is open, and after
``recovery_seconds`` one probe admission is allowed (half-open).  A
successful probe closes the breaker; a failed one re-opens it.

Retry pacing reuses the sweep engine's deterministic, seed-derived
jitter (:func:`repro.exp.engine.retry_backoff_seconds`) in its
exponential mode, so two replicas of the service retrying the same
failing session back off by *different* amounts (seeded by session) yet
each replica's schedule is reproducible run-to-run.
"""

from __future__ import annotations

import time
import zlib
from typing import Callable, Dict, Optional

from repro.exp.engine import retry_backoff_seconds

__all__ = [
    "CLOSED",
    "HALF_OPEN",
    "OPEN",
    "CircuitBreaker",
    "step_backoff_seconds",
]

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half_open"

#: Base / cap for the serve-side exponential retry schedule.
SERVE_BACKOFF_BASE = 0.05
SERVE_BACKOFF_MAX = 5.0


def step_backoff_seconds(session_id: str, attempt: int) -> float:
    """Deterministic exponential backoff for one session's step retry.

    The seed is derived from the session id (stable across processes via
    CRC32, not :func:`hash`), so each session gets its own jitter stream
    and a re-run of the same failure sequence pauses identically.
    """
    seed = zlib.crc32(session_id.encode("utf-8"))
    return retry_backoff_seconds(
        seed,
        attempt,
        base=SERVE_BACKOFF_BASE,
        cap=SERVE_BACKOFF_MAX,
        exponential=True,
    )


class CircuitBreaker:
    """Closed -> open -> half-open breaker with an injectable clock.

    * **closed**: calls flow; consecutive failures are counted.
    * **open**: calls are refused until ``recovery_seconds`` elapse.
    * **half-open**: one probe call is allowed through; its outcome
      decides between closing and re-opening.
    """

    def __init__(
        self,
        failure_threshold: int = 3,
        recovery_seconds: float = 30.0,
        clock: Callable[[], float] = time.monotonic,
    ):
        if failure_threshold < 1:
            raise ValueError(
                f"failure_threshold must be >= 1, got {failure_threshold}"
            )
        self.failure_threshold = int(failure_threshold)
        self.recovery_seconds = float(recovery_seconds)
        self._clock = clock
        self._state = CLOSED
        self._consecutive_failures = 0
        self._opened_at: Optional[float] = None
        #: Lifetime trip count (observability).
        self.trips = 0

    @property
    def state(self) -> str:
        self._maybe_half_open()
        return self._state

    def _maybe_half_open(self) -> None:
        if (
            self._state == OPEN
            and self._opened_at is not None
            and self._clock() - self._opened_at >= self.recovery_seconds
        ):
            self._state = HALF_OPEN

    def allow(self) -> bool:
        """May a call proceed right now?"""
        self._maybe_half_open()
        return self._state in (CLOSED, HALF_OPEN)

    def record_success(self) -> None:
        self._maybe_half_open()
        self._consecutive_failures = 0
        self._state = CLOSED
        self._opened_at = None

    def record_failure(self) -> bool:
        """Count one failure; returns True when this call trips the breaker."""
        self._maybe_half_open()
        if self._state == HALF_OPEN:
            # The probe failed: straight back to open, fresh clock.
            self._state = OPEN
            self._opened_at = self._clock()
            self.trips += 1
            return True
        self._consecutive_failures += 1
        if (
            self._state == CLOSED
            and self._consecutive_failures >= self.failure_threshold
        ):
            self._state = OPEN
            self._opened_at = self._clock()
            self.trips += 1
            return True
        return False

    def seconds_until_probe(self) -> Optional[float]:
        """Time until the next half-open probe (None unless open)."""
        self._maybe_half_open()
        if self._state != OPEN or self._opened_at is None:
            return None
        return max(
            0.0, self.recovery_seconds - (self._clock() - self._opened_at)
        )

    def __repr__(self) -> str:
        return (
            f"CircuitBreaker({self.state}, "
            f"failures={self._consecutive_failures}/"
            f"{self.failure_threshold}, trips={self.trips})"
        )


class BreakerBoard:
    """One breaker per tenant, created on first touch."""

    def __init__(
        self,
        failure_threshold: int = 3,
        recovery_seconds: float = 30.0,
        clock: Callable[[], float] = time.monotonic,
    ):
        self.failure_threshold = failure_threshold
        self.recovery_seconds = recovery_seconds
        self._clock = clock
        self._breakers: Dict[str, CircuitBreaker] = {}

    def breaker(self, tenant: str) -> CircuitBreaker:
        breaker = self._breakers.get(tenant)
        if breaker is None:
            breaker = CircuitBreaker(
                failure_threshold=self.failure_threshold,
                recovery_seconds=self.recovery_seconds,
                clock=self._clock,
            )
            self._breakers[tenant] = breaker
        return breaker

    def snapshot(self) -> Dict[str, str]:
        return {name: b.state for name, b in self._breakers.items()}
