"""The asyncio serving front-end: many sessions, few processes, no hangs.

:class:`LocalizationService` multiplexes hundreds of concurrent
:class:`~repro.sim.session.LocalizerSession` streams over a small set of
*shards* -- each shard one persistent worker process (a
:class:`~repro.core.parallel.WorkerPool` of size 1) hosting its share of
the sessions (see :mod:`repro.serve.shard`).  The supervision tree:

.. code-block:: text

    LocalizationService
      |- AdmissionController      (quotas, rate limits, typed shedding)
      |- BreakerBoard             (per-tenant circuit breakers)
      |- _Shard x N               (asyncio.Lock + WorkerPool(1))
      |     '- ShardHost          (worker-side session registry)
      '- health endpoint          (asyncio TCP, line-JSON)

Failure handling is layered exactly as ISSUE PR 10 prescribes:

* every shard call carries a **deadline** (``step_timeout_seconds``) --
  a wedged worker turns into a typed timeout, never a hang;
* failed calls are **retried** with deterministic seed-derived
  exponential backoff (:func:`repro.serve.breaker.step_backoff_seconds`),
  resurrecting the shard between attempts;
* exhausted retries feed the tenant's **circuit breaker**; a tripped
  breaker quarantines the tenant at admission;
* a killed worker process (``BrokenProcessPool``) triggers
  **resurrection**: the shard pool is discarded (hard-kill deadline) and
  every active session re-opened from its last ``repro-checkpoint v1``
  snapshot -- bitwise-identical continuation by the resume-parity
  contract;
* under sustained pressure the service **degrades gracefully**: a
  session can be stepped down to the ``fast`` backend with a widened
  checkpoint cadence (and, for fresh opens, a reduced particle count),
  each transition recorded in the trace and the service manifest.

Everything observable flows through ``service.*`` metrics
(:mod:`repro.obs.metrics`) and trace events, documented in
``docs/OBSERVABILITY.md``.
"""

from __future__ import annotations

import asyncio
import json
import time
import zlib
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from repro.core.parallel import WorkerPool
from repro.obs.ledger import Ledger, RunManifest
from repro.obs.metrics import NULL_REGISTRY, MetricsRegistry
from repro.obs.trace import NULL_TRACER, Tracer
from repro.serve.admission import (
    AdmissionConfig,
    AdmissionController,
    Admitted,
    Rejected,
)
from repro.serve.breaker import BreakerBoard, step_backoff_seconds
from repro.serve.shard import (
    ShardHost,
    host_drop,
    host_evict,
    host_list,
    host_open,
    host_pid,
    host_result,
    host_step,
)

__all__ = [
    "LocalizationService",
    "ServiceConfig",
    "SessionHandle",
    "StepFailed",
]

_HOST_FNS = {
    "open": host_open,
    "step": host_step,
    "result": host_result,
    "evict": host_evict,
    "drop": host_drop,
    "list": host_list,
}


class StepFailed(RuntimeError):
    """A session step exhausted its deadline-aware retry budget."""

    def __init__(self, session_id: str, attempts: int, cause: str):
        super().__init__(
            f"session {session_id!r} step failed after {attempts} attempts: "
            f"{cause}"
        )
        self.session_id = session_id
        self.attempts = attempts
        self.cause = cause


@dataclass
class ServiceConfig:
    """Knobs for one :class:`LocalizationService` instance."""

    #: Directory holding every session's ``repro-checkpoint v1`` snapshot.
    checkpoint_dir: Union[str, Path] = "serve-checkpoints"
    #: Shard (worker process) count.
    n_shards: int = 2
    #: Run shards in-process instead of in worker processes.  The fast
    #: path for tests and property-based suites; chaos coverage needs
    #: real processes.
    inline: bool = False
    #: Snapshot cadence armed on every hosted session.
    checkpoint_every: int = 1
    #: Steps advanced per shard call (amortizes the submit round-trip).
    steps_per_call: int = 4
    #: Deadline on any single shard call.
    step_timeout_seconds: float = 60.0
    #: Attempts per step before the failure feeds the tenant's breaker.
    max_step_attempts: int = 3
    #: Consecutive step failures before a tenant's breaker opens.
    breaker_failure_threshold: int = 3
    #: Seconds an open breaker waits before its half-open probe.
    breaker_recovery_seconds: float = 30.0
    #: Admission limits (quotas, rates, ingest-queue capacity).
    admission: AdmissionConfig = field(default_factory=AdmissionConfig)
    #: Backend sessions are stepped down to when degraded.
    degrade_backend: str = "fast"
    #: Multiplier applied to ``checkpoint_every`` per degrade level.
    degrade_checkpoint_factor: int = 4
    #: Particle-count fraction for degraded *fresh* opens (resumes keep
    #: their particle arrays; counts cannot change mid-run).
    degrade_particle_fraction: float = 0.5

    def __post_init__(self) -> None:
        if self.n_shards < 1:
            raise ValueError(f"n_shards must be >= 1, got {self.n_shards}")
        if self.checkpoint_every < 1:
            raise ValueError(
                f"checkpoint_every must be >= 1, got {self.checkpoint_every}"
            )
        if self.max_step_attempts < 1:
            raise ValueError(
                f"max_step_attempts must be >= 1, "
                f"got {self.max_step_attempts}"
            )
        self.checkpoint_dir = Path(self.checkpoint_dir)


@dataclass
class SessionHandle:
    """The service-side registry entry for one hosted session."""

    session_id: str
    tenant: str
    shard: int
    spec: Dict[str, Any]
    state: str = "active"  # active | evicted | completed | failed
    step_index: int = 0
    n_time_steps: Optional[int] = None
    finished: bool = False
    degrade_level: int = 0
    resurrections: int = 0
    retries: int = 0


class _Shard:
    """One worker process (or inline host) plus its serialization lock."""

    def __init__(self, index: int, inline: bool, tracer=None):
        self.index = index
        self.inline = inline
        self.lock = asyncio.Lock()
        self.host: Optional[ShardHost] = ShardHost() if inline else None
        self.pool: Optional[WorkerPool] = (
            None if inline else WorkerPool(1, tracer=tracer)
        )

    async def call(
        self, fn_name: str, *args, timeout: Optional[float] = None
    ) -> Any:
        """One host call, deadline-bounded.  Caller holds the lock."""
        if self.inline:
            if fn_name == "pid":
                import os

                return os.getpid()
            return getattr(self.host, fn_name)(*args)
        fn = host_pid if fn_name == "pid" else _HOST_FNS[fn_name]
        future = self.pool.submit(fn, *args)
        return await asyncio.wait_for(
            asyncio.wrap_future(future), timeout=timeout
        )

    def discard(self) -> None:
        if self.pool is not None:
            self.pool.discard()
        if self.host is not None:
            self.host = ShardHost()

    def close(self) -> None:
        if self.pool is not None:
            self.pool.close()


class LocalizationService:
    """Asyncio front-end multiplexing sessions over shard processes."""

    def __init__(
        self,
        config: Optional[ServiceConfig] = None,
        tracer: Optional[Tracer] = None,
        metrics: Optional[MetricsRegistry] = None,
        ledger: Optional[Ledger] = None,
        clock=time.monotonic,
    ):
        self.config = config or ServiceConfig()
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.metrics = metrics if metrics is not None else NULL_REGISTRY
        self.ledger = ledger
        self._clock = clock
        self.config.checkpoint_dir.mkdir(parents=True, exist_ok=True)
        self.admission = AdmissionController(self.config.admission, clock)
        self.breakers = BreakerBoard(
            failure_threshold=self.config.breaker_failure_threshold,
            recovery_seconds=self.config.breaker_recovery_seconds,
            clock=clock,
        )
        self.shards = [
            _Shard(i, self.config.inline, tracer=self.tracer)
            for i in range(self.config.n_shards)
        ]
        self.sessions: Dict[str, SessionHandle] = {}
        #: Degradation transitions, in order (also traced + manifested).
        self.degradations: List[Dict[str, Any]] = []
        self._started_unix = time.time()
        self._health_server: Optional[asyncio.AbstractServer] = None

    # --- placement -----------------------------------------------------------

    def _shard_for(self, session_id: str) -> int:
        """Stable session -> shard placement (CRC32, not ``hash``)."""
        return zlib.crc32(session_id.encode("utf-8")) % len(self.shards)

    def _checkpoint_path(self, session_id: str) -> Path:
        return self.config.checkpoint_dir / f"{session_id}.ckpt.json"

    # --- admission + lifecycle -----------------------------------------------

    async def submit(
        self, tenant: str, session_id: str, spec: Dict[str, Any]
    ) -> Union[Admitted, Rejected]:
        """Admit and open one session; sheds with a typed rejection.

        ``spec`` is the :meth:`repro.serve.shard.ShardHost.open` spec
        minus the checkpoint fields, which the service owns.
        """
        if session_id in self.sessions:
            return Rejected(
                reason="duplicate_session",
                detail=f"session {session_id!r} already registered",
                status=409,
                tenant=tenant,
            )
        shard_index = self._shard_for(session_id)
        outcome = self.admission.admit(tenant, session_id, shard=shard_index)
        if isinstance(outcome, Rejected):
            self.metrics.counter("service.rejected").inc()
            self.tracer.emit(
                "service_reject",
                tenant=tenant,
                session_id=session_id,
                reason=outcome.reason,
            )
            return outcome
        spec = dict(spec)
        spec["checkpoint_path"] = str(self._checkpoint_path(session_id))
        spec.setdefault("checkpoint_every", self.config.checkpoint_every)
        handle = SessionHandle(
            session_id=session_id,
            tenant=tenant,
            shard=shard_index,
            spec=spec,
        )
        try:
            opened = await self._robust_call(
                handle, "open", session_id, spec
            )
        except StepFailed:
            self.admission.release(session_id)
            self.metrics.counter("service.rejected").inc()
            return Rejected(
                reason="open_failed",
                detail=f"session {session_id!r} could not be opened",
                tenant=tenant,
            )
        handle.step_index = opened["step_index"]
        handle.n_time_steps = opened["n_time_steps"]
        handle.finished = opened["finished"]
        self.sessions[session_id] = handle
        self.metrics.counter("service.admitted").inc()
        self.metrics.gauge("service.sessions_active").set(
            self.admission.active_sessions
        )
        self.tracer.emit(
            "service_admit",
            tenant=tenant,
            session_id=session_id,
            shard=shard_index,
            resumed=opened["resumed"],
        )
        return Admitted(
            session_id=session_id, tenant=tenant, shard=shard_index
        )

    def request_steps(
        self, session_id: str, n_steps: int = 1
    ) -> Union[Admitted, Rejected]:
        """Enqueue a step request on the session's bounded ingest queue.

        Backpressure surfaces here: a full queue sheds the request with a
        typed 503 instead of buffering without bound or blocking.
        """
        handle = self._handle(session_id)
        queue = self.admission.queue(session_id)
        if queue is None:
            return Rejected(
                reason="not_admitted",
                detail=f"session {session_id!r} holds no admission slot",
                status=404,
                tenant=handle.tenant,
            )
        if not queue.push(int(n_steps)):
            self.metrics.counter("service.shed_steps").inc()
            self.tracer.emit(
                "service_shed",
                session_id=session_id,
                queue_depth=queue.depth,
            )
            return Rejected(
                reason="queue_full",
                detail=(
                    f"ingest queue for {session_id!r} at capacity "
                    f"{queue.capacity}"
                ),
                retry_after=0.1,
                tenant=handle.tenant,
            )
        self.metrics.gauge("service.ingest_depth").set(queue.depth)
        return Admitted(
            session_id=session_id,
            tenant=handle.tenant,
            shard=handle.shard,
            status=202,
        )

    async def pump(self, session_id: str) -> SessionHandle:
        """Drain the session's ingest queue, stepping the worker."""
        handle = self._handle(session_id)
        queue = self.admission.queue(session_id)
        while queue is not None and queue and not handle.finished:
            n_steps = queue.pop()
            self.metrics.gauge("service.ingest_depth").set(queue.depth)
            await self._advance(handle, n_steps)
        return handle

    async def advance(
        self, session_id: str, n_steps: Optional[int] = None
    ) -> SessionHandle:
        """Step the session directly (no queue), honoring the deadline."""
        handle = self._handle(session_id)
        await self._advance(
            handle,
            n_steps if n_steps is not None else self.config.steps_per_call,
        )
        return handle

    async def run_to_completion(self, session_id: str) -> Dict[str, Any]:
        """Drive one session to its final step; returns its result doc."""
        handle = self._handle(session_id)
        while not handle.finished:
            await self._advance(handle, self.config.steps_per_call)
        return await self.collect(session_id)

    async def _advance(self, handle: SessionHandle, n_steps: int) -> None:
        if handle.state == "evicted":
            raise StepFailed(
                handle.session_id, 0, "session is evicted; restore it first"
            )
        start = self._clock()
        stepped = await self._robust_call(
            handle, "step", handle.session_id, int(n_steps)
        )
        self.metrics.histogram("service.step_seconds").observe(
            self._clock() - start
        )
        handle.step_index = stepped["step_index"]
        handle.finished = stepped["finished"]
        self.breakers.breaker(handle.tenant).record_success()

    async def collect(self, session_id: str) -> Dict[str, Any]:
        """Fetch the finished session's result and free its slot."""
        handle = self._handle(session_id)
        result = await self._robust_call(handle, "result", session_id)
        if handle.finished:
            await self._robust_call(handle, "drop", session_id)
            handle.state = "completed"
            self.admission.release(session_id)
            self.metrics.counter("service.completed").inc()
            self.metrics.gauge("service.sessions_active").set(
                self.admission.active_sessions
            )
        return result

    # --- eviction / restore --------------------------------------------------

    async def evict(self, session_id: str) -> Dict[str, Any]:
        """Checkpoint the session out of memory, freeing its slot."""
        handle = self._handle(session_id)
        evicted = await self._robust_call(handle, "evict", session_id)
        handle.state = "evicted"
        self.admission.release(session_id)
        self.metrics.counter("service.evicted").inc()
        self.metrics.gauge("service.sessions_active").set(
            self.admission.active_sessions
        )
        self.tracer.emit(
            "service_evict",
            session_id=session_id,
            step=handle.step_index,
            checkpoint=evicted["checkpoint_path"],
        )
        return evicted

    async def restore(
        self, session_id: str
    ) -> Union[Admitted, Rejected]:
        """Re-admit an evicted session from its checkpoint, on demand."""
        handle = self._handle(session_id)
        if handle.state != "evicted":
            return Rejected(
                reason="not_evicted",
                detail=f"session {session_id!r} is {handle.state}",
                status=409,
                tenant=handle.tenant,
            )
        outcome = self.admission.admit(
            handle.tenant, session_id, shard=handle.shard
        )
        if isinstance(outcome, Rejected):
            self.metrics.counter("service.rejected").inc()
            return outcome
        try:
            opened = await self._robust_call(
                handle, "open", session_id, handle.spec
            )
        except StepFailed:
            self.admission.release(session_id)
            return Rejected(
                reason="restore_failed",
                detail=f"session {session_id!r} failed to restore",
                tenant=handle.tenant,
            )
        handle.state = "active"
        handle.step_index = opened["step_index"]
        handle.finished = opened["finished"]
        self.metrics.counter("service.restored").inc()
        self.metrics.gauge("service.sessions_active").set(
            self.admission.active_sessions
        )
        self.tracer.emit(
            "service_restore",
            session_id=session_id,
            step=handle.step_index,
        )
        return outcome

    # --- degradation ---------------------------------------------------------

    async def degrade(
        self, session_id: str, reason: str = "overload"
    ) -> SessionHandle:
        """Step one session down the degradation ladder.

        Level 1: switch to the ``fast`` backend and widen the checkpoint
        cadence.  Level 2+: additionally halve the particle count for
        any future *fresh* open (a resumed session keeps its arrays).
        The transition is traced and recorded for the service manifest.
        """
        handle = self._handle(session_id)
        handle.degrade_level += 1
        spec = dict(handle.spec)
        spec["backend_override"] = self.config.degrade_backend
        spec["checkpoint_every"] = int(
            spec.get("checkpoint_every", self.config.checkpoint_every)
        ) * self.config.degrade_checkpoint_factor
        if handle.degrade_level >= 2 and spec.get("scenario") is not None:
            particles = spec["scenario"]["localizer_config"]["n_particles"]
            spec["n_particles"] = max(
                1, int(particles * self.config.degrade_particle_fraction)
            )
        handle.spec = spec
        # Cycle through the checkpoint so the new backend/cadence apply.
        if handle.state == "active":
            await self._robust_call(handle, "evict", session_id)
            opened = await self._robust_call(
                handle, "open", session_id, spec
            )
            handle.step_index = opened["step_index"]
            handle.finished = opened["finished"]
        transition = {
            "session_id": session_id,
            "level": handle.degrade_level,
            "reason": reason,
            "backend": spec["backend_override"],
            "checkpoint_every": spec["checkpoint_every"],
            "step": handle.step_index,
        }
        self.degradations.append(transition)
        self.metrics.counter("service.degraded").inc()
        self.tracer.emit("service_degrade", **transition)
        return handle

    # --- the robust call core ------------------------------------------------

    async def _robust_call(
        self, handle: SessionHandle, fn_name: str, *args
    ) -> Any:
        """Deadline + retry + resurrect around one shard call."""
        shard = self.shards[handle.shard]
        last_error = "unknown"
        for attempt in range(1, self.config.max_step_attempts + 1):
            async with shard.lock:
                try:
                    return await shard.call(
                        fn_name,
                        *args,
                        timeout=self.config.step_timeout_seconds,
                    )
                except (asyncio.TimeoutError, TimeoutError) as exc:
                    last_error = f"deadline exceeded: {exc or 'timeout'}"
                    await self._resurrect_shard(shard, exclude=fn_name == "open")
                except (BrokenProcessPool, OSError) as exc:
                    last_error = f"worker died: {exc or type(exc).__name__}"
                    await self._resurrect_shard(shard, exclude=fn_name == "open")
                except KeyError as exc:
                    # The worker lost the session (fresh pool after a
                    # kill): resurrect re-opens it, then retry.
                    last_error = f"session missing in worker: {exc}"
                    await self._resurrect_shard(shard, exclude=fn_name == "open")
            if attempt < self.config.max_step_attempts:
                handle.retries += 1
                self.metrics.counter("service.step_retries").inc()
                await asyncio.sleep(
                    step_backoff_seconds(handle.session_id, attempt)
                )
        breaker = self.breakers.breaker(handle.tenant)
        if breaker.record_failure():
            self.admission.quarantine(
                handle.tenant, self.config.breaker_recovery_seconds
            )
            self.metrics.counter("service.quarantined").inc()
            self.tracer.emit(
                "service_quarantine",
                tenant=handle.tenant,
                session_id=handle.session_id,
            )
        raise StepFailed(
            handle.session_id, self.config.max_step_attempts, last_error
        )

    async def _resurrect_shard(
        self, shard: _Shard, exclude: bool = False
    ) -> None:
        """Rebuild a dead shard and re-open its sessions from checkpoints.

        ``exclude=True`` skips re-opening (used when the failing call was
        itself an open: the retry will re-issue it).  Caller holds the
        shard lock.
        """
        shard.discard()
        if exclude:
            return
        for handle in self.sessions.values():
            if handle.shard != shard.index or handle.state != "active":
                continue
            try:
                opened = await shard.call(
                    "open",
                    handle.session_id,
                    handle.spec,
                    timeout=self.config.step_timeout_seconds,
                )
            except Exception:
                handle.state = "failed"
                self.metrics.counter("service.resurrect_failures").inc()
                continue
            handle.step_index = opened["step_index"]
            handle.finished = opened["finished"]
            handle.resurrections += 1
            self.metrics.counter("service.resurrected").inc()
            self.tracer.emit(
                "service_resurrect",
                session_id=handle.session_id,
                shard=shard.index,
                step=handle.step_index,
                resumed=opened["resumed"],
            )

    # --- health / readiness --------------------------------------------------

    async def shard_pids(self) -> List[int]:
        """Worker PIDs, one per shard (chaos tests kill these)."""
        pids = []
        for shard in self.shards:
            async with shard.lock:
                pids.append(
                    await shard.call(
                        "pid", timeout=self.config.step_timeout_seconds
                    )
                )
        return pids

    def health(self) -> Dict[str, Any]:
        """Liveness + load snapshot (the ``health`` endpoint body)."""
        states: Dict[str, int] = {}
        for handle in self.sessions.values():
            states[handle.state] = states.get(handle.state, 0) + 1
        return {
            "status": "ok",
            "uptime_seconds": time.time() - self._started_unix,
            "n_shards": len(self.shards),
            "sessions": states,
            "admission": self.admission.snapshot(),
            "breakers": self.breakers.snapshot(),
            "degradations": len(self.degradations),
        }

    def ready(self) -> Dict[str, Any]:
        """Readiness: can the service take a new session right now?"""
        capacity_free = (
            self.admission.active_sessions
            < self.config.admission.max_sessions
        )
        return {
            "ready": capacity_free,
            "active_sessions": self.admission.active_sessions,
            "max_sessions": self.config.admission.max_sessions,
        }

    async def serve_health(
        self, host: str = "127.0.0.1", port: int = 0
    ) -> tuple:
        """Start the line-JSON health endpoint; returns (host, port).

        Protocol: the client sends one line (``health``, ``ready`` or
        ``metrics``) and receives one JSON line back.
        """

        async def handler(reader, writer):
            try:
                line = (await reader.readline()).decode("utf-8").strip()
                if line == "ready":
                    body = self.ready()
                elif line == "metrics":
                    body = self.metrics.snapshot()
                else:
                    body = self.health()
                writer.write((json.dumps(body) + "\n").encode("utf-8"))
                await writer.drain()
            finally:
                writer.close()

        self._health_server = await asyncio.start_server(
            handler, host=host, port=port
        )
        sockname = self._health_server.sockets[0].getsockname()
        return sockname[0], sockname[1]

    def manifest(self, name: str = "serve") -> RunManifest:
        """A ``repro-manifest v1`` document for this service run."""
        snapshot = self.metrics.snapshot() if self.metrics.enabled else {}
        metrics: Dict[str, float] = {}
        for key in (
            "service.admitted",
            "service.rejected",
            "service.evicted",
            "service.restored",
            "service.resurrected",
            "service.completed",
            "service.degraded",
        ):
            entry = snapshot.get(key)
            if entry is not None:
                metrics[key] = float(entry.get("value", 0.0))
        hist = snapshot.get("service.step_seconds")
        if hist and hist.get("count"):
            metrics["service.step_p50_seconds"] = hist["p50"]
            metrics["service.step_p99_seconds"] = hist["p99"]
        return RunManifest(
            kind="serve",
            name=name,
            created_unix=time.time(),
            seeds=(),
            metrics=metrics,
            context={
                "n_shards": len(self.shards),
                "inline": self.config.inline,
                "degradations": list(self.degradations),
                "sessions": len(self.sessions),
            },
        )

    async def close(self) -> None:
        """Shut everything down cleanly (pools, health endpoint)."""
        if self._health_server is not None:
            self._health_server.close()
            await self._health_server.wait_closed()
            self._health_server = None
        for shard in self.shards:
            shard.close()
        if self.ledger is not None:
            self.ledger.append(self.manifest())

    # --- plumbing ------------------------------------------------------------

    def _handle(self, session_id: str) -> SessionHandle:
        handle = self.sessions.get(session_id)
        if handle is None:
            raise KeyError(f"unknown session {session_id!r}")
        return handle
