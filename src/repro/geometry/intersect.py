"""Segment/segment and segment/polygon intersection queries.

The key query for radiation transport is
:func:`segment_polygon_chord_length`: the total length of a ray (segment)
that lies *inside* a polygon.  This is the per-obstacle thickness ``l_b`` of
Eq. (3) in the paper.  The implementation parameterizes the segment, collects
every crossing parameter against the polygon boundary, and classifies each
sub-interval by testing its midpoint for containment.  This midpoint
classification is robust for concave polygons (the paper's U-shaped
obstacle) and for rays that graze vertices.
"""

from __future__ import annotations

from typing import List, Optional, TYPE_CHECKING

from repro.geometry.primitives import EPS, Point, Segment, on_segment, orientation

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from repro.geometry.polygon import Polygon


def segments_intersect(s1: Segment, s2: Segment) -> bool:
    """True if the closed segments ``s1`` and ``s2`` share at least one point."""
    o1 = orientation(s1.a, s1.b, s2.a)
    o2 = orientation(s1.a, s1.b, s2.b)
    o3 = orientation(s2.a, s2.b, s1.a)
    o4 = orientation(s2.a, s2.b, s1.b)

    if o1 != o2 and o3 != o4:
        return True
    # Collinear special cases.
    if o1 == 0 and on_segment(s2.a, s1):
        return True
    if o2 == 0 and on_segment(s2.b, s1):
        return True
    if o3 == 0 and on_segment(s1.a, s2):
        return True
    if o4 == 0 and on_segment(s1.b, s2):
        return True
    return False


def segment_intersection_point(s1: Segment, s2: Segment) -> Optional[Point]:
    """Intersection point of two non-collinear segments, or ``None``.

    Collinear overlap has no single intersection point and returns ``None``;
    callers that care about overlap handle it via the parametric machinery in
    :func:`_crossing_parameters`.
    """
    d1 = s1.b - s1.a
    d2 = s2.b - s2.a
    denom = d1.cross(d2)
    if abs(denom) < EPS:
        return None
    diff = s2.a - s1.a
    t = diff.cross(d2) / denom
    u = diff.cross(d1) / denom
    if -EPS <= t <= 1.0 + EPS and -EPS <= u <= 1.0 + EPS:
        return s1.point_at(min(max(t, 0.0), 1.0))
    return None


def _crossing_parameters(seg: Segment, polygon: "Polygon") -> List[float]:
    """Parameters ``t`` in [0, 1] where ``seg`` meets the polygon boundary.

    For edges collinear with the segment, both overlap endpoints are
    recorded so that the interval classification sees the transition.
    """
    params: List[float] = []
    d = seg.b - seg.a
    seg_len_sq = d.dot(d)
    if seg_len_sq < EPS * EPS:
        return params

    for edge in polygon.edges():
        e = edge.b - edge.a
        denom = d.cross(e)
        diff = edge.a - seg.a
        if abs(denom) >= EPS:
            t = diff.cross(e) / denom
            u = diff.cross(d) / denom
            if -EPS <= t <= 1.0 + EPS and -EPS <= u <= 1.0 + EPS:
                params.append(min(max(t, 0.0), 1.0))
        else:
            # Parallel.  Only collinear edges can contribute crossings.
            if abs(diff.cross(d)) < EPS * max(1.0, seg_len_sq):
                for endpoint in (edge.a, edge.b):
                    t = (endpoint - seg.a).dot(d) / seg_len_sq
                    if -EPS <= t <= 1.0 + EPS:
                        params.append(min(max(t, 0.0), 1.0))
    return params


def segment_polygon_chord_length(seg: Segment, polygon: "Polygon") -> float:
    """Total length of ``seg`` lying strictly inside ``polygon``.

    Works for convex and concave simple polygons.  Boundary grazing
    contributes zero length (a ray sliding along a wall face is not
    attenuated by the wall's interior).
    """
    length = seg.length()
    if length < EPS:
        return 0.0

    params = _crossing_parameters(seg, polygon)
    params.extend((0.0, 1.0))
    params = sorted(set(round(t, 12) for t in params))

    inside_total = 0.0
    for t0, t1 in zip(params[:-1], params[1:]):
        if t1 - t0 < EPS:
            continue
        mid = seg.point_at((t0 + t1) / 2.0)
        # Strict interior only: a ray grazing along a wall face is not
        # attenuated by the wall's interior.
        if polygon.contains(mid, include_boundary=False):
            inside_total += (t1 - t0) * length
    return inside_total
