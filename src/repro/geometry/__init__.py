"""2-D geometry substrate.

The radiation transport model (``repro.physics``) needs, for every
sensor--source pair, the total thickness of each obstacle intersected by the
straight ray between them (the ``l_b`` terms of Eq. (3) in the paper).  This
package provides the small computational-geometry kernel that supports that
query:

* :mod:`repro.geometry.primitives` -- points, segments, orientation tests.
* :mod:`repro.geometry.polygon` -- simple polygons with containment tests and
  segment clipping (the chord-length query used for obstacle thickness).
* :mod:`repro.geometry.shapes` -- factories for the shapes used in the
  paper's scenarios (axis-aligned rectangles, U-shapes, L-shapes, walls).
* :mod:`repro.geometry.intersect` -- segment/segment and segment/polygon
  intersection helpers.

All coordinates are plain floats in the paper's abstract length units
(1 unit = 1 cm in the paper's problem formulation).
"""

from repro.geometry.primitives import (
    Point,
    Segment,
    distance,
    distance_sq,
    orientation,
    on_segment,
)
from repro.geometry.polygon import Polygon
from repro.geometry.intersect import (
    segments_intersect,
    segment_intersection_point,
    segment_polygon_chord_length,
)
from repro.geometry.shapes import (
    rectangle,
    u_shape,
    l_shape,
    wall,
    regular_polygon,
)

__all__ = [
    "Point",
    "Segment",
    "distance",
    "distance_sq",
    "orientation",
    "on_segment",
    "Polygon",
    "segments_intersect",
    "segment_intersection_point",
    "segment_polygon_chord_length",
    "rectangle",
    "u_shape",
    "l_shape",
    "wall",
    "regular_polygon",
]
