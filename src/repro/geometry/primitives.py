"""Geometric primitives: points, segments, and predicates.

These are intentionally tiny, allocation-light value types.  The hot path of
the simulator (obstacle chord lengths for every sensor--source pair) works on
them directly, so they avoid any heavyweight abstraction.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterator, Tuple

#: Tolerance used by the geometric predicates in this package.  Scenario
#: coordinates are O(100) units, so 1e-9 is far below any meaningful length.
EPS = 1e-9


@dataclass(frozen=True)
class Point:
    """A point (or free vector) in the 2-D surveillance plane."""

    x: float
    y: float

    def __iter__(self) -> Iterator[float]:
        yield self.x
        yield self.y

    def __add__(self, other: "Point") -> "Point":
        return Point(self.x + other.x, self.y + other.y)

    def __sub__(self, other: "Point") -> "Point":
        return Point(self.x - other.x, self.y - other.y)

    def __mul__(self, scalar: float) -> "Point":
        return Point(self.x * scalar, self.y * scalar)

    __rmul__ = __mul__

    def dot(self, other: "Point") -> float:
        """Dot product with ``other`` treated as a vector."""
        return self.x * other.x + self.y * other.y

    def cross(self, other: "Point") -> float:
        """Z-component of the 2-D cross product (signed parallelogram area)."""
        return self.x * other.y - self.y * other.x

    def norm(self) -> float:
        """Euclidean length of this point treated as a vector."""
        return math.hypot(self.x, self.y)

    def as_tuple(self) -> Tuple[float, float]:
        return (self.x, self.y)


@dataclass(frozen=True)
class Segment:
    """A closed straight segment between two points."""

    a: Point
    b: Point

    def length(self) -> float:
        return distance(self.a, self.b)

    def midpoint(self) -> Point:
        return Point((self.a.x + self.b.x) / 2.0, (self.a.y + self.b.y) / 2.0)

    def point_at(self, t: float) -> Point:
        """Point at parameter ``t`` in [0, 1] along the segment."""
        return Point(
            self.a.x + t * (self.b.x - self.a.x),
            self.a.y + t * (self.b.y - self.a.y),
        )


def distance(p: Point, q: Point) -> float:
    """Euclidean distance between two points."""
    return math.hypot(p.x - q.x, p.y - q.y)


def distance_sq(p: Point, q: Point) -> float:
    """Squared Euclidean distance (avoids the sqrt on hot paths)."""
    dx = p.x - q.x
    dy = p.y - q.y
    return dx * dx + dy * dy


def orientation(p: Point, q: Point, r: Point) -> int:
    """Orientation of the ordered triple (p, q, r).

    Returns +1 for counter-clockwise, -1 for clockwise, and 0 for collinear
    (within :data:`EPS`).
    """
    val = (q - p).cross(r - p)
    if val > EPS:
        return 1
    if val < -EPS:
        return -1
    return 0


def on_segment(p: Point, seg: Segment) -> bool:
    """True if ``p`` lies on ``seg`` (collinear and within its bounding box)."""
    if orientation(seg.a, seg.b, p) != 0:
        return False
    return (
        min(seg.a.x, seg.b.x) - EPS <= p.x <= max(seg.a.x, seg.b.x) + EPS
        and min(seg.a.y, seg.b.y) - EPS <= p.y <= max(seg.a.y, seg.b.y) + EPS
    )
