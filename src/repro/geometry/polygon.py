"""Simple polygons with containment and chord queries."""

from __future__ import annotations

from typing import Iterable, List, Sequence, Tuple

from repro.geometry.primitives import EPS, Point, Segment, on_segment


class Polygon:
    """A simple (non-self-intersecting) polygon, convex or concave.

    Vertices may be given in either winding order.  The polygon is closed
    implicitly (the last vertex connects back to the first).
    """

    def __init__(self, vertices: Sequence[Point | Tuple[float, float]]):
        pts = [v if isinstance(v, Point) else Point(float(v[0]), float(v[1])) for v in vertices]
        if len(pts) < 3:
            raise ValueError(f"a polygon needs at least 3 vertices, got {len(pts)}")
        self.vertices: List[Point] = pts
        xs = [p.x for p in pts]
        ys = [p.y for p in pts]
        #: Axis-aligned bounding box (min_x, min_y, max_x, max_y).
        self.bbox: Tuple[float, float, float, float] = (min(xs), min(ys), max(xs), max(ys))

    def __repr__(self) -> str:
        return f"Polygon({len(self.vertices)} vertices, bbox={self.bbox})"

    def edges(self) -> Iterable[Segment]:
        """Boundary edges in vertex order (closing edge included)."""
        n = len(self.vertices)
        for i in range(n):
            yield Segment(self.vertices[i], self.vertices[(i + 1) % n])

    def area(self) -> float:
        """Unsigned area via the shoelace formula."""
        total = 0.0
        n = len(self.vertices)
        for i in range(n):
            p = self.vertices[i]
            q = self.vertices[(i + 1) % n]
            total += p.cross(q)
        return abs(total) / 2.0

    def centroid(self) -> Point:
        """Area centroid of the polygon."""
        cx = cy = 0.0
        signed = 0.0
        n = len(self.vertices)
        for i in range(n):
            p = self.vertices[i]
            q = self.vertices[(i + 1) % n]
            w = p.cross(q)
            signed += w
            cx += (p.x + q.x) * w
            cy += (p.y + q.y) * w
        if abs(signed) < EPS:
            # Degenerate (zero-area) polygon: fall back to vertex mean.
            return Point(
                sum(v.x for v in self.vertices) / n,
                sum(v.y for v in self.vertices) / n,
            )
        return Point(cx / (3.0 * signed), cy / (3.0 * signed))

    def contains(self, p: Point, include_boundary: bool = True) -> bool:
        """Point-in-polygon test (ray casting with boundary handling)."""
        min_x, min_y, max_x, max_y = self.bbox
        if not (min_x - EPS <= p.x <= max_x + EPS and min_y - EPS <= p.y <= max_y + EPS):
            return False

        for edge in self.edges():
            if on_segment(p, edge):
                return include_boundary

        inside = False
        n = len(self.vertices)
        for i in range(n):
            a = self.vertices[i]
            b = self.vertices[(i + 1) % n]
            # Half-open rule on the y-range avoids double counting vertices.
            if (a.y > p.y) != (b.y > p.y):
                x_cross = a.x + (p.y - a.y) * (b.x - a.x) / (b.y - a.y)
                if x_cross > p.x:
                    inside = not inside
        return inside

    def chord_length(self, seg: Segment) -> float:
        """Length of ``seg`` inside this polygon (obstacle thickness query)."""
        # Cheap bbox rejection before the full clipping computation.
        min_x, min_y, max_x, max_y = self.bbox
        if max(seg.a.x, seg.b.x) < min_x - EPS or min(seg.a.x, seg.b.x) > max_x + EPS:
            return 0.0
        if max(seg.a.y, seg.b.y) < min_y - EPS or min(seg.a.y, seg.b.y) > max_y + EPS:
            return 0.0
        from repro.geometry.intersect import segment_polygon_chord_length

        return segment_polygon_chord_length(seg, self)

    def translated(self, dx: float, dy: float) -> "Polygon":
        """A copy of this polygon shifted by (dx, dy)."""
        return Polygon([Point(v.x + dx, v.y + dy) for v in self.vertices])
