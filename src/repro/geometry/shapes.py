"""Factories for the obstacle shapes used in the paper's scenarios."""

from __future__ import annotations

import math
from typing import Tuple

from repro.geometry.polygon import Polygon
from repro.geometry.primitives import Point


def rectangle(x0: float, y0: float, x1: float, y1: float) -> Polygon:
    """Axis-aligned rectangle spanning [x0, x1] x [y0, y1]."""
    if x1 <= x0 or y1 <= y0:
        raise ValueError(f"degenerate rectangle: ({x0}, {y0}) to ({x1}, {y1})")
    return Polygon([(x0, y0), (x1, y0), (x1, y1), (x0, y1)])


def wall(
    x: float,
    y: float,
    length: float,
    thickness: float,
    angle_deg: float = 0.0,
) -> Polygon:
    """A thin wall: a rotated rectangle centered at (x, y).

    ``angle_deg`` = 0 produces a horizontal wall (long axis along +x).
    """
    if length <= 0 or thickness <= 0:
        raise ValueError("wall length and thickness must be positive")
    half_l = length / 2.0
    half_t = thickness / 2.0
    theta = math.radians(angle_deg)
    cos_t, sin_t = math.cos(theta), math.sin(theta)

    def rotate(px: float, py: float) -> Tuple[float, float]:
        return (x + px * cos_t - py * sin_t, y + px * sin_t + py * cos_t)

    corners = [(-half_l, -half_t), (half_l, -half_t), (half_l, half_t), (-half_l, half_t)]
    return Polygon([rotate(px, py) for px, py in corners])


def u_shape(
    x: float,
    y: float,
    width: float,
    height: float,
    thickness: float,
    opening: str = "up",
) -> Polygon:
    """A U-shaped obstacle (three walls of a rectangle), as in Fig. 8(a).

    ``(x, y)`` is the lower-left corner of the shape's bounding box;
    ``opening`` is the open side: ``"up"``, ``"down"``, ``"left"`` or
    ``"right"``.
    """
    if thickness * 2 >= min(width, height):
        raise ValueError("U-shape thickness too large for its bounding box")
    if opening not in ("up", "down", "left", "right"):
        raise ValueError(f"unknown opening {opening!r}")

    # Build an up-opening U inside a (bw x bh) box, then rotate into place.
    # For left/right openings the pre-rotation box is (height x width) so
    # the final bounding box comes out as (width x height).
    t = thickness
    if opening in ("up", "down"):
        bw, bh = width, height
    else:
        bw, bh = height, width
    base = [
        (0.0, 0.0),
        (bw, 0.0),
        (bw, bh),
        (bw - t, bh),
        (bw - t, t),
        (t, t),
        (t, bh),
        (0.0, bh),
    ]
    if opening == "up":
        pts = base
    elif opening == "down":
        pts = [(bw - px, bh - py) for px, py in base]
    elif opening == "right":
        # Rotate 90 degrees clockwise: the open top turns to face +x.
        pts = [(py, bw - px) for px, py in base]
    else:  # "left"
        # Rotate 90 degrees counter-clockwise: the open top faces -x.
        pts = [(bh - py, px) for px, py in base]
    return Polygon([Point(x + px, y + py) for px, py in pts])


def l_shape(x: float, y: float, width: float, height: float, thickness: float) -> Polygon:
    """An L-shaped obstacle with its corner at (x, y)."""
    if thickness >= min(width, height):
        raise ValueError("L-shape thickness too large for its bounding box")
    t = thickness
    pts = [
        (0.0, 0.0),
        (width, 0.0),
        (width, t),
        (t, t),
        (t, height),
        (0.0, height),
    ]
    return Polygon([Point(x + px, y + py) for px, py in pts])


def regular_polygon(cx: float, cy: float, radius: float, sides: int) -> Polygon:
    """A regular polygon centered at (cx, cy); useful for pillar obstacles."""
    if sides < 3:
        raise ValueError("a regular polygon needs at least 3 sides")
    if radius <= 0:
        raise ValueError("radius must be positive")
    return Polygon(
        [
            Point(
                cx + radius * math.cos(2.0 * math.pi * i / sides),
                cy + radius * math.sin(2.0 * math.pi * i / sides),
            )
            for i in range(sides)
        ]
    )
