"""ASCII rendering of surveillance areas.

Glyph conventions (later layers overdraw earlier ones):

* particle density -- `` .:-=+*#%@`` ramp (weight mass per cell)
* obstacles -- ``[]``-filled cells
* sensors -- ``o``
* sources -- ``S``
* estimates -- ``E``
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.core.estimator import SourceEstimate
from repro.core.particles import ParticleSet
from repro.geometry.primitives import Point
from repro.physics.obstacle import Obstacle
from repro.physics.source import RadiationSource
from repro.sensors.sensor import Sensor

#: Density ramp from empty to dense.
DENSITY_RAMP = " .:-=+*#%@"


class AsciiMap:
    """A character-grid canvas over a rectangular area.

    The grid is addressed in map coordinates; row 0 of the rendered output
    is the *top* (largest y), matching how the paper's figures are read.
    """

    def __init__(self, area: Tuple[float, float], cols: int = 64, rows: int = 32):
        if cols < 2 or rows < 2:
            raise ValueError(f"grid must be at least 2x2, got {cols}x{rows}")
        if area[0] <= 0 or area[1] <= 0:
            raise ValueError(f"area must be positive, got {area}")
        self.area = (float(area[0]), float(area[1]))
        self.cols = cols
        self.rows = rows
        self.grid: List[List[str]] = [[" "] * cols for _ in range(rows)]

    def _cell(self, x: float, y: float) -> Optional[Tuple[int, int]]:
        """(row, col) for map coordinates, or None if out of the area."""
        w, h = self.area
        if not (0.0 <= x <= w and 0.0 <= y <= h):
            return None
        col = min(self.cols - 1, int(x / w * self.cols))
        row = min(self.rows - 1, int(y / h * self.rows))
        return (self.rows - 1 - row, col)  # flip so +y is up

    def put(self, x: float, y: float, glyph: str) -> None:
        """Draw a single glyph at map coordinates (no-op when outside)."""
        cell = self._cell(x, y)
        if cell is not None:
            r, c = cell
            self.grid[r][c] = glyph[0]

    def draw_density(self, particles: ParticleSet) -> None:
        """Shade cells by particle weight mass using the density ramp."""
        mass = np.zeros((self.rows, self.cols))
        w, h = self.area
        cols = np.minimum(self.cols - 1, (particles.xs / w * self.cols).astype(int))
        rows = np.minimum(self.rows - 1, (particles.ys / h * self.rows).astype(int))
        inside = (
            (particles.xs >= 0)
            & (particles.xs <= w)
            & (particles.ys >= 0)
            & (particles.ys <= h)
        )
        np.add.at(mass, (self.rows - 1 - rows[inside], cols[inside]), particles.weights[inside])
        peak = mass.max()
        if peak <= 0:
            return
        levels = (mass / peak * (len(DENSITY_RAMP) - 1)).astype(int)
        for r in range(self.rows):
            for c in range(self.cols):
                if levels[r, c] > 0:
                    self.grid[r][c] = DENSITY_RAMP[levels[r, c]]

    def draw_obstacle(self, obstacle: Obstacle) -> None:
        """Fill the cells whose centers lie inside the obstacle."""
        w, h = self.area
        for r in range(self.rows):
            for c in range(self.cols):
                x = (c + 0.5) / self.cols * w
                y = (self.rows - 1 - r + 0.5) / self.rows * h
                if obstacle.polygon.contains(Point(x, y)):
                    self.grid[r][c] = "]" if c % 2 else "["

    def draw_sensors(self, sensors: Sequence[Sensor]) -> None:
        for sensor in sensors:
            self.put(sensor.x, sensor.y, "x" if sensor.failed else "o")

    def draw_sources(self, sources: Sequence[RadiationSource]) -> None:
        for source in sources:
            self.put(source.x, source.y, "S")

    def draw_estimates(self, estimates: Sequence[SourceEstimate]) -> None:
        for estimate in estimates:
            self.put(estimate.x, estimate.y, "E")

    def render(self, legend: str = "") -> str:
        border = "+" + "-" * self.cols + "+"
        body = "\n".join("|" + "".join(row) + "|" for row in self.grid)
        parts = [border, body, border]
        if legend:
            parts.append(legend)
        return "\n".join(parts)


def render_scenario(
    area: Tuple[float, float],
    sensors: Sequence[Sensor] = (),
    sources: Sequence[RadiationSource] = (),
    obstacles: Sequence[Obstacle] = (),
    estimates: Sequence[SourceEstimate] = (),
    particles: Optional[ParticleSet] = None,
    cols: int = 64,
    rows: int = 32,
) -> str:
    """One-call rendering of a full scene (the Fig. 8 layout view)."""
    canvas = AsciiMap(area, cols=cols, rows=rows)
    if particles is not None:
        canvas.draw_density(particles)
    for obstacle in obstacles:
        canvas.draw_obstacle(obstacle)
    canvas.draw_sensors(sensors)
    canvas.draw_sources(sources)
    canvas.draw_estimates(estimates)
    return canvas.render(
        legend="o sensor   S source   E estimate   [] obstacle   shading = particle mass"
    )


def render_particles(
    particles: ParticleSet,
    area: Tuple[float, float],
    sources: Sequence[RadiationSource] = (),
    estimates: Sequence[SourceEstimate] = (),
    cols: int = 64,
    rows: int = 32,
) -> str:
    """The Fig. 2 / Fig. 4 view: particle density with sources overlaid."""
    return render_scenario(
        area,
        sources=sources,
        estimates=estimates,
        particles=particles,
        cols=cols,
        rows=rows,
    )
