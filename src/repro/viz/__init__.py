"""Terminal visualization of scenarios and particle populations.

No plotting libraries are available offline, so the figures that are
pictures in the paper (Figs. 2, 4, 8) are rendered as ASCII maps: sensors,
sources, obstacles, particle density and estimates over a character grid.
"""

from repro.viz.ascii_map import AsciiMap, render_scenario, render_particles

__all__ = ["AsciiMap", "render_scenario", "render_particles"]
