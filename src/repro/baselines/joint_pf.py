"""The "straightforward" joint-state particle filter of Section IV.

State = the concatenated parameters of all K sources (dimension 3K), K
known in advance.  Every measurement updates every particle with the full
superposition likelihood.  This is the approach the paper's Section IV
dismantles: the parameter space grows exponentially with K, so the number
of particles needed for a representative posterior explodes, and K must be
known.  It is implemented here as the head-to-head baseline for the
scalability benchmarks.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.baselines.base import BaselineEstimate, BatchLocalizer
from repro.core.resampling import systematic_resample_indices
from repro.core.weighting import poisson_log_pmf
from repro.physics.units import CPM_PER_MICROCURIE
from repro.sensors.measurement import Measurement


class JointParticleFilter(BatchLocalizer):
    """Sequential Monte Carlo over the joint 3K-dimensional source state."""

    def __init__(
        self,
        n_sources: int,
        area: Tuple[float, float],
        n_particles: int = 3000,
        efficiency: float = 1.0,
        background_cpm: float = 0.0,
        strength_range: Tuple[float, float] = (1.0, 1000.0),
        jitter_sigma: float = 3.0,
        strength_jitter_rel: float = 0.15,
        rng: Optional[np.random.Generator] = None,
    ):
        if n_sources < 1:
            raise ValueError(f"n_sources must be >= 1, got {n_sources}")
        if n_particles < 2:
            raise ValueError(f"n_particles must be >= 2, got {n_particles}")
        self.n_sources = n_sources
        self.area = area
        self.n_particles = n_particles
        self.efficiency = efficiency
        self.background_cpm = background_cpm
        self.strength_range = strength_range
        self.jitter_sigma = jitter_sigma
        self.strength_jitter_rel = strength_jitter_rel
        self.rng = rng if rng is not None else np.random.default_rng()
        self._init_particles()

    def _init_particles(self) -> None:
        k, n = self.n_sources, self.n_particles
        lo, hi = self.strength_range
        # state[:, 3j:3j+2] = position of source j, state[:, 3j+2] = strength
        self.state = np.empty((n, 3 * k))
        for j in range(k):
            self.state[:, 3 * j] = self.rng.uniform(0, self.area[0], size=n)
            self.state[:, 3 * j + 1] = self.rng.uniform(0, self.area[1], size=n)
            self.state[:, 3 * j + 2] = np.exp(
                self.rng.uniform(np.log(lo), np.log(hi), size=n)
            )
        self.weights = np.full(n, 1.0 / n)

    def _expected_rates(self, sensor_x: float, sensor_y: float) -> np.ndarray:
        """Expected CPM at the sensor under every particle's joint state."""
        rates = np.full(self.n_particles, self.background_cpm)
        for j in range(self.n_sources):
            dx = self.state[:, 3 * j] - sensor_x
            dy = self.state[:, 3 * j + 1] - sensor_y
            rates += (
                CPM_PER_MICROCURIE
                * self.efficiency
                * self.state[:, 3 * j + 2]
                / (1.0 + dx * dx + dy * dy)
            )
        return rates

    def observe(self, measurement: Measurement) -> None:
        """One full-population update + resample (no fusion range)."""
        rates = self._expected_rates(measurement.x, measurement.y)
        log_like = poisson_log_pmf(measurement.cpm, rates)
        finite = np.isfinite(log_like)
        if not np.any(finite):
            return
        log_like -= log_like[finite].max()
        self.weights = self.weights * np.exp(np.maximum(log_like, -700.0))
        total = self.weights.sum()
        if total <= 0:
            self.weights.fill(1.0 / self.n_particles)
        else:
            self.weights /= total
        self._resample()

    def _resample(self) -> None:
        idx = systematic_resample_indices(self.weights, self.n_particles, self.rng)
        self.state = self.state[idx]
        self.weights.fill(1.0 / self.n_particles)
        # Roughen every dimension so duplicates diverge.
        k = self.n_sources
        for j in range(k):
            self.state[:, 3 * j] += self.rng.normal(0, self.jitter_sigma, self.n_particles)
            self.state[:, 3 * j + 1] += self.rng.normal(0, self.jitter_sigma, self.n_particles)
            self.state[:, 3 * j + 2] *= np.exp(
                self.rng.normal(0, self.strength_jitter_rel, self.n_particles)
            )
        np.clip(self.state[:, 0::3], 0.0, self.area[0], out=self.state[:, 0::3])
        np.clip(self.state[:, 1::3], 0.0, self.area[1], out=self.state[:, 1::3])
        np.clip(
            self.state[:, 2::3],
            self.strength_range[0],
            self.strength_range[1],
            out=self.state[:, 2::3],
        )

    def current_estimates(self) -> List[BaselineEstimate]:
        """Weighted mean of each source block.

        Subject to label switching: nothing ties block j to a specific
        physical source, which is part of why this formulation struggles
        with several sources (Fig. 2's oscillation is the visible symptom).
        """
        w = self.weights / self.weights.sum()
        out = []
        for j in range(self.n_sources):
            out.append(
                BaselineEstimate(
                    x=float(np.dot(w, self.state[:, 3 * j])),
                    y=float(np.dot(w, self.state[:, 3 * j + 1])),
                    strength=float(np.dot(w, self.state[:, 3 * j + 2])),
                )
            )
        return out

    def localize(self, measurements: Sequence[Measurement]) -> List[BaselineEstimate]:
        for measurement in measurements:
            self.observe(measurement)
        return self.current_estimates()
