"""Single-source localizers (Rao et al. / Chin et al. style).

These are the methods the paper's related work covers for K = 1:

* :class:`SingleSourceMLE` -- maximum-likelihood fit of one source.
* :class:`LogRatioTDOA` -- the log-space "difference of distances"
  triangulation: ratios of background-subtracted readings from sensor
  triples give linear equations in (x, y, x^2 + y^2).
* :class:`MeanOfEstimates` -- MoE fusion: triangulate with many random
  triples and average the results.
* :class:`IterativePruning` -- ITP fusion: repeatedly discard the triple
  estimate farthest from the centroid of the surviving estimates.

None of these apply to multiple sources (the paper's motivation); the
baseline benchmark shows them degrading as soon as K = 2.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.baselines.base import BaselineEstimate, BatchLocalizer, mean_readings_by_sensor
from repro.baselines.mle import MultiSourceMLE
from repro.physics.units import CPM_PER_MICROCURIE
from repro.sensors.measurement import Measurement


class SingleSourceMLE(BatchLocalizer):
    """Maximum-likelihood estimation of exactly one source."""

    def __init__(
        self,
        area: Tuple[float, float],
        efficiency: float = 1.0,
        background_cpm: float = 0.0,
        n_starts: int = 8,
        rng: Optional[np.random.Generator] = None,
    ):
        self._mle = MultiSourceMLE(
            1,
            area,
            efficiency=efficiency,
            background_cpm=background_cpm,
            n_starts=n_starts,
            rng=rng,
        )

    def localize(self, measurements: Sequence[Measurement]) -> List[BaselineEstimate]:
        return self._mle.localize(measurements)


def triangulate_triple(
    positions: np.ndarray,
    excess: np.ndarray,
) -> Optional[Tuple[float, float]]:
    """Log-ratio triangulation from exactly three sensors.

    From ``excess_i = C / (1 + r_i^2)`` the pairwise ratios give, for each
    pair (i, j), a *linear* equation in the unknowns (x, y, u) with
    u = x^2 + y^2:

        (1 - k) u + (2 k x_i - 2 x_j) x + (2 k y_i - 2 y_j) y
            = k (1 + |p_i|^2) - (1 + |p_j|^2),      k = excess_i / excess_j

    Solving the 2-pair linear system (dropping the nonlinear constraint on
    u, the standard linearization) yields the source position.  Returns
    ``None`` for degenerate triples (zero excess or singular geometry).
    """
    if positions.shape != (3, 2) or excess.shape != (3,):
        raise ValueError("triangulate_triple needs exactly three sensors")
    if np.any(excess <= 0):
        return None
    # Only two of the three pairwise ratio equations are independent (the
    # third ratio is the product of the other two), so the linear system
    # in (u, x, y) has rank 2.  Express (x, y) affinely in u from the two
    # equations, then close with the quadratic constraint u = x^2 + y^2.
    matrix = np.empty((2, 2))
    rhs = np.empty(2)
    u_coeff = np.empty(2)
    for row, (i, j) in enumerate(((0, 1), (0, 2))):
        k = excess[i] / excess[j]
        xi, yi = positions[i]
        xj, yj = positions[j]
        u_coeff[row] = 1.0 - k
        matrix[row] = (2.0 * k * xi - 2.0 * xj, 2.0 * k * yi - 2.0 * yj)
        rhs[row] = k * (1.0 + xi * xi + yi * yi) - (1.0 + xj * xj + yj * yj)
    try:
        alpha = np.linalg.solve(matrix, rhs)          # (x, y) at u = 0
        beta = np.linalg.solve(matrix, u_coeff)       # d(x, y)/du (negated)
    except np.linalg.LinAlgError:
        return None
    # (x, y) = alpha - beta * u  and  u = x^2 + y^2:
    #   (beta.beta) u^2 - (2 alpha.beta + 1) u + alpha.alpha = 0
    a = float(beta @ beta)
    b = -(2.0 * float(alpha @ beta) + 1.0)
    c = float(alpha @ alpha)
    candidates = []
    if abs(a) < 1e-12:
        if abs(b) > 1e-12:
            candidates.append(-c / b)
    else:
        disc = b * b - 4.0 * a * c
        if disc < 0:
            return None
        root = np.sqrt(disc)
        candidates.extend(((-b - root) / (2.0 * a), (-b + root) / (2.0 * a)))
    solutions = [
        (float(alpha[0] - beta[0] * u), float(alpha[1] - beta[1] * u))
        for u in candidates
        if u >= 0 and np.isfinite(u)
    ]
    if not solutions:
        return None
    if len(solutions) == 1:
        return solutions[0]
    # Two circle intersections are both exact; the physical one lies
    # closest to the hottest sensor of the triple.
    hottest = positions[int(np.argmax(excess))]
    solutions.sort(
        key=lambda p: (p[0] - hottest[0]) ** 2 + (p[1] - hottest[1]) ** 2
    )
    return solutions[0]


def _strength_from_position(
    positions: np.ndarray,
    excess: np.ndarray,
    x: float,
    y: float,
    efficiency: float,
) -> float:
    """Least-squares strength given a fixed position."""
    d_sq = (positions[:, 0] - x) ** 2 + (positions[:, 1] - y) ** 2
    gain = CPM_PER_MICROCURIE * efficiency / (1.0 + d_sq)
    denom = float(np.dot(gain, gain))
    if denom <= 0:
        return 0.0
    return max(0.0, float(np.dot(gain, excess) / denom))


class LogRatioTDOA(BatchLocalizer):
    """Triangulation from the three highest-excess sensors."""

    def __init__(
        self,
        area: Tuple[float, float],
        efficiency: float = 1.0,
        background_cpm: float = 0.0,
    ):
        self.area = area
        self.efficiency = efficiency
        self.background_cpm = background_cpm

    def localize(self, measurements: Sequence[Measurement]) -> List[BaselineEstimate]:
        positions, mean_cpm = mean_readings_by_sensor(measurements)
        excess = np.maximum(mean_cpm - self.background_cpm, 0.0)
        top = np.argsort(excess)[-3:]
        result = triangulate_triple(positions[top], excess[top])
        if result is None:
            return []
        x, y = result
        x = float(np.clip(x, 0, self.area[0]))
        y = float(np.clip(y, 0, self.area[1]))
        strength = _strength_from_position(positions, excess, x, y, self.efficiency)
        return [BaselineEstimate(x, y, strength)]


def _triple_estimates(
    positions: np.ndarray,
    excess: np.ndarray,
    area: Tuple[float, float],
    n_triples: int,
    rng: np.random.Generator,
    top_fraction: float = 0.5,
) -> List[Tuple[float, float]]:
    """Triangulations from random triples of high-excess sensors."""
    order = np.argsort(excess)[::-1]
    pool = order[: max(3, int(len(order) * top_fraction))]
    pool = pool[excess[pool] > 0]
    if len(pool) < 3:
        return []
    results: List[Tuple[float, float]] = []
    for _ in range(n_triples):
        triple = rng.choice(pool, size=3, replace=False)
        result = triangulate_triple(positions[triple], excess[triple])
        if result is None:
            continue
        x, y = result
        # Reject wildly out-of-area solutions (degenerate geometry).
        if -area[0] * 0.5 <= x <= area[0] * 1.5 and -area[1] * 0.5 <= y <= area[1] * 1.5:
            results.append((x, y))
    return results


class MeanOfEstimates(BatchLocalizer):
    """MoE fusion: average of many random-triple triangulations."""

    def __init__(
        self,
        area: Tuple[float, float],
        efficiency: float = 1.0,
        background_cpm: float = 0.0,
        n_triples: int = 64,
        rng: Optional[np.random.Generator] = None,
    ):
        self.area = area
        self.efficiency = efficiency
        self.background_cpm = background_cpm
        self.n_triples = n_triples
        self.rng = rng if rng is not None else np.random.default_rng()

    def localize(self, measurements: Sequence[Measurement]) -> List[BaselineEstimate]:
        positions, mean_cpm = mean_readings_by_sensor(measurements)
        excess = np.maximum(mean_cpm - self.background_cpm, 0.0)
        points = _triple_estimates(
            positions, excess, self.area, self.n_triples, self.rng
        )
        if not points:
            return []
        arr = np.array(points)
        x = float(np.clip(arr[:, 0].mean(), 0, self.area[0]))
        y = float(np.clip(arr[:, 1].mean(), 0, self.area[1]))
        strength = _strength_from_position(positions, excess, x, y, self.efficiency)
        return [BaselineEstimate(x, y, strength)]


class IterativePruning(BatchLocalizer):
    """ITP fusion: prune outlier triple estimates until the cloud is tight."""

    def __init__(
        self,
        area: Tuple[float, float],
        efficiency: float = 1.0,
        background_cpm: float = 0.0,
        n_triples: int = 64,
        keep_fraction: float = 0.5,
        rng: Optional[np.random.Generator] = None,
    ):
        if not 0.0 < keep_fraction <= 1.0:
            raise ValueError(f"keep_fraction must be in (0, 1], got {keep_fraction}")
        self.area = area
        self.efficiency = efficiency
        self.background_cpm = background_cpm
        self.n_triples = n_triples
        self.keep_fraction = keep_fraction
        self.rng = rng if rng is not None else np.random.default_rng()

    def localize(self, measurements: Sequence[Measurement]) -> List[BaselineEstimate]:
        positions, mean_cpm = mean_readings_by_sensor(measurements)
        excess = np.maximum(mean_cpm - self.background_cpm, 0.0)
        points = _triple_estimates(
            positions, excess, self.area, self.n_triples, self.rng
        )
        if not points:
            return []
        cloud = np.array(points)
        target = max(1, int(len(cloud) * self.keep_fraction))
        while len(cloud) > target:
            centroid = cloud.mean(axis=0)
            d_sq = ((cloud - centroid) ** 2).sum(axis=1)
            cloud = np.delete(cloud, int(np.argmax(d_sq)), axis=0)
        x = float(np.clip(cloud[:, 0].mean(), 0, self.area[0]))
        y = float(np.clip(cloud[:, 1].mean(), 0, self.area[1]))
        strength = _strength_from_position(positions, excess, x, y, self.efficiency)
        return [BaselineEstimate(x, y, strength)]
