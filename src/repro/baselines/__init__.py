"""Baseline localizers the paper compares against (Section II).

All baselines are *batch* estimators: they consume a set of measurements
(typically everything observed so far) and return source estimates.  This
is the operating mode of the prior work the paper criticizes -- it is what
makes them sensitive to missing/out-of-order data and expensive for large
K, which the benchmarks quantify.

* :mod:`repro.baselines.joint_pf` -- the "straightforward" particle filter
  of Section IV: one joint state of dimension 3K, K known in advance.
* :mod:`repro.baselines.mle` -- joint maximum-likelihood fitting of K
  sources (Morelande et al. style), via multi-start L-BFGS-B.
* :mod:`repro.baselines.model_selection` -- AIC/BIC estimation of K by
  fitting the MLE for a range of K values.
* :mod:`repro.baselines.grid_nnls` -- the discretized convex formulation
  (Cheng & Singh style): non-negative least squares on a source grid.
* :mod:`repro.baselines.em_gmm` -- Gaussian-mixture EM over excess-count
  mass with BIC selection (Ding & Cheng style).
* :mod:`repro.baselines.single_source` -- single-source methods: MLE,
  log-space TDOA triangulation, mean-of-estimates (MoE), and iterative
  pruning (ITP) fusion (Rao, Chin et al. style).
"""

from repro.baselines.base import BaselineEstimate, BatchLocalizer, collect_measurements
from repro.baselines.joint_pf import JointParticleFilter
from repro.baselines.mle import MultiSourceMLE
from repro.baselines.model_selection import estimate_source_count, MLEWithModelSelection
from repro.baselines.grid_nnls import GridNNLSLocalizer
from repro.baselines.em_gmm import EMGaussianMixtureLocalizer
from repro.baselines.single_source import (
    SingleSourceMLE,
    LogRatioTDOA,
    MeanOfEstimates,
    IterativePruning,
)

__all__ = [
    "BaselineEstimate",
    "BatchLocalizer",
    "collect_measurements",
    "JointParticleFilter",
    "MultiSourceMLE",
    "estimate_source_count",
    "MLEWithModelSelection",
    "GridNNLSLocalizer",
    "EMGaussianMixtureLocalizer",
    "SingleSourceMLE",
    "LogRatioTDOA",
    "MeanOfEstimates",
    "IterativePruning",
]
