"""Joint maximum-likelihood estimation of K sources (Morelande et al. style).

Fits all 3K source parameters at once by maximizing the Poisson
log-likelihood of the per-sensor mean readings.  The paper's scalability
criticism is visible directly in this implementation: the optimization
landscape has combinatorially many local optima, so the method needs
multi-start random restarts whose cost grows quickly with K, and the
reference results "do not scale beyond four sources".
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np
from scipy.optimize import minimize

from repro.baselines.base import BaselineEstimate, BatchLocalizer, mean_readings_by_sensor
from repro.physics.units import CPM_PER_MICROCURIE
from repro.sensors.measurement import Measurement


def poisson_nll(
    params: np.ndarray,
    sensor_positions: np.ndarray,
    mean_cpm: np.ndarray,
    n_readings_per_sensor: float,
    efficiency: float,
    background_cpm: float,
) -> float:
    """Negative Poisson log-likelihood of K sources given mean readings.

    ``params`` is the flattened (x, y, log_strength) x K vector; strengths
    are optimized in log space to keep them positive and well-scaled.
    """
    k = len(params) // 3
    rates = np.full(len(sensor_positions), background_cpm, dtype=float)
    for j in range(k):
        x, y, log_s = params[3 * j : 3 * j + 3]
        d_sq = (sensor_positions[:, 0] - x) ** 2 + (sensor_positions[:, 1] - y) ** 2
        rates += CPM_PER_MICROCURIE * efficiency * np.exp(log_s) / (1.0 + d_sq)
    rates = np.maximum(rates, 1e-12)
    # Up to params-independent constants, each sensor's mean of n readings
    # contributes n * (mean * log(rate) - rate).
    ll = n_readings_per_sensor * np.sum(mean_cpm * np.log(rates) - rates)
    return -float(ll)


class MultiSourceMLE(BatchLocalizer):
    """Multi-start L-BFGS-B maximum-likelihood fit for a known K."""

    def __init__(
        self,
        n_sources: int,
        area: Tuple[float, float],
        efficiency: float = 1.0,
        background_cpm: float = 0.0,
        strength_bounds: Tuple[float, float] = (0.1, 2000.0),
        n_starts: int = 8,
        rng: Optional[np.random.Generator] = None,
    ):
        if n_sources < 1:
            raise ValueError(f"n_sources must be >= 1, got {n_sources}")
        if n_starts < 1:
            raise ValueError(f"n_starts must be >= 1, got {n_starts}")
        self.n_sources = n_sources
        self.area = area
        self.efficiency = efficiency
        self.background_cpm = background_cpm
        self.strength_bounds = strength_bounds
        self.n_starts = n_starts
        self.rng = rng if rng is not None else np.random.default_rng()
        #: NLL of the best fit from the most recent :meth:`localize` call
        #: (used by AIC/BIC model selection).
        self.last_nll: float = float("inf")

    def _initial_guess(
        self, sensor_positions: np.ndarray, mean_cpm: np.ndarray
    ) -> np.ndarray:
        """Seed sources near the hottest sensors, with jitter."""
        k = self.n_sources
        excess = np.maximum(mean_cpm - self.background_cpm, 0.0)
        order = np.argsort(excess)[::-1]
        guess = np.zeros(3 * k)
        for j in range(k):
            sx, sy = sensor_positions[order[j % len(order)]]
            guess[3 * j] = np.clip(sx + self.rng.normal(0, 5), 0, self.area[0])
            guess[3 * j + 1] = np.clip(sy + self.rng.normal(0, 5), 0, self.area[1])
            local = excess[order[j % len(order)]]
            s0 = max(local / (CPM_PER_MICROCURIE * self.efficiency) * 50.0, 1.0)
            guess[3 * j + 2] = np.log(np.clip(s0, *self.strength_bounds))
        return guess

    def localize(self, measurements: Sequence[Measurement]) -> List[BaselineEstimate]:
        sensor_positions, mean_cpm = mean_readings_by_sensor(measurements)
        n_per_sensor = len(measurements) / len(sensor_positions)
        bounds = []
        for _ in range(self.n_sources):
            bounds.extend(
                [
                    (0.0, self.area[0]),
                    (0.0, self.area[1]),
                    (np.log(self.strength_bounds[0]), np.log(self.strength_bounds[1])),
                ]
            )
        best: Optional[np.ndarray] = None
        best_nll = float("inf")
        for _ in range(self.n_starts):
            x0 = self._initial_guess(sensor_positions, mean_cpm)
            result = minimize(
                poisson_nll,
                x0,
                args=(
                    sensor_positions,
                    mean_cpm,
                    n_per_sensor,
                    self.efficiency,
                    self.background_cpm,
                ),
                method="L-BFGS-B",
                bounds=bounds,
            )
            if result.fun < best_nll:
                best_nll = float(result.fun)
                best = result.x
        self.last_nll = best_nll
        assert best is not None
        return [
            BaselineEstimate(
                x=float(best[3 * j]),
                y=float(best[3 * j + 1]),
                strength=float(np.exp(best[3 * j + 2])),
            )
            for j in range(self.n_sources)
        ]
