"""Shared interfaces and helpers for baseline localizers."""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.sensors.measurement import Measurement


@dataclass(frozen=True)
class BaselineEstimate:
    """A source estimate produced by a baseline method."""

    x: float
    y: float
    strength: float

    @property
    def position(self) -> Tuple[float, float]:
        return (self.x, self.y)

    def __str__(self) -> str:
        return f"BaselineEstimate(({self.x:.1f}, {self.y:.1f}), {self.strength:.1f} uCi)"


class BatchLocalizer(ABC):
    """A localizer that consumes a measurement batch all at once."""

    @abstractmethod
    def localize(self, measurements: Sequence[Measurement]) -> List[BaselineEstimate]:
        """Estimate sources from the given measurements."""


def collect_measurements(
    batches: Sequence[Sequence[Measurement]],
) -> List[Measurement]:
    """Flatten per-time-step batches into one measurement list."""
    out: List[Measurement] = []
    for batch in batches:
        out.extend(batch)
    return out


def mean_readings_by_sensor(
    measurements: Sequence[Measurement],
) -> Tuple[np.ndarray, np.ndarray]:
    """Average repeated readings per sensor.

    Returns ``(positions, mean_cpm)`` where positions is (N, 2).  Averaging
    is the natural sufficient statistic here: the Poisson rate at a sensor
    is constant over time for static sources, so the per-sensor mean is the
    minimum-variance summary the batch methods should fit against.
    """
    if not measurements:
        raise ValueError("no measurements to aggregate")
    sums: Dict[int, float] = {}
    counts: Dict[int, int] = {}
    pos: Dict[int, Tuple[float, float]] = {}
    for m in measurements:
        sums[m.sensor_id] = sums.get(m.sensor_id, 0.0) + m.cpm
        counts[m.sensor_id] = counts.get(m.sensor_id, 0) + 1
        pos[m.sensor_id] = (m.x, m.y)
    ids = sorted(sums)
    positions = np.array([pos[i] for i in ids], dtype=float)
    means = np.array([sums[i] / counts[i] for i in ids], dtype=float)
    return positions, means
