"""Gaussian-mixture EM localization (Ding & Cheng style).

The reference models target signatures as a Gaussian mixture over space,
estimates K with AIC/BIC, and refines component means with EM (followed by
mean-shift in the original).  We adapt it to radiation counting: each
sensor's *excess* mean reading is treated as mass observed at the sensor's
location, and a weighted-data EM fits a K-component mixture to that mass
field.  BIC over K picks the model order.

The known weakness this reproduces: the spatial spread of a source's
signature (its 1/(1+r^2) footprint) is much wider than the source itself,
so mixture means are biased toward sensor-geometry centroids and
components merge for nearby sources -- the "generic source model" critique
in the paper's related-work section.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.baselines.base import BaselineEstimate, BatchLocalizer, mean_readings_by_sensor
from repro.physics.units import CPM_PER_MICROCURIE
from repro.sensors.measurement import Measurement


def _weighted_em(
    points: np.ndarray,
    masses: np.ndarray,
    k: int,
    rng: np.random.Generator,
    n_iter: int = 60,
    min_var: float = 4.0,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, float]:
    """EM for a K-component isotropic GMM on weighted points.

    Returns (means, variances, mixture_weights, weighted log-likelihood).
    """
    n = len(points)
    total_mass = masses.sum()
    if total_mass <= 0:
        raise ValueError("EM needs positive total mass")
    # Initialize means at mass-weighted random points.
    prob = masses / total_mass
    means = points[rng.choice(n, size=k, replace=False, p=prob)].astype(float)
    variances = np.full(k, np.var(points) + min_var)
    mix = np.full(k, 1.0 / k)

    log_like = -np.inf
    for _ in range(n_iter):
        # E-step: responsibilities (n, k).
        d_sq = (
            (points[:, 0, None] - means[None, :, 0]) ** 2
            + (points[:, 1, None] - means[None, :, 1]) ** 2
        )
        log_pdf = -0.5 * d_sq / variances[None, :] - np.log(
            2.0 * math.pi * variances[None, :]
        )
        log_resp = log_pdf + np.log(np.maximum(mix[None, :], 1e-300))
        peak = log_resp.max(axis=1, keepdims=True)
        resp = np.exp(log_resp - peak)
        norm = resp.sum(axis=1, keepdims=True)
        resp /= norm
        log_like = float(np.dot(masses, (np.log(norm[:, 0]) + peak[:, 0])))

        # M-step with per-point masses.
        weighted_resp = resp * masses[:, None]
        component_mass = weighted_resp.sum(axis=0)
        safe = np.maximum(component_mass, 1e-12)
        means = (weighted_resp.T @ points) / safe[:, None]
        for j in range(k):
            diff_sq = (
                (points[:, 0] - means[j, 0]) ** 2 + (points[:, 1] - means[j, 1]) ** 2
            )
            variances[j] = max(
                min_var, float(np.dot(weighted_resp[:, j], diff_sq) / (2.0 * safe[j]))
            )
        mix = component_mass / component_mass.sum()
    return means, variances, mix, log_like


class EMGaussianMixtureLocalizer(BatchLocalizer):
    """Weighted-EM GMM over per-sensor excess readings, BIC over K."""

    def __init__(
        self,
        area: Tuple[float, float],
        max_sources: int = 6,
        efficiency: float = 1.0,
        background_cpm: float = 0.0,
        n_restarts: int = 3,
        rng: Optional[np.random.Generator] = None,
    ):
        if max_sources < 1:
            raise ValueError(f"max_sources must be >= 1, got {max_sources}")
        self.area = area
        self.max_sources = max_sources
        self.efficiency = efficiency
        self.background_cpm = background_cpm
        self.n_restarts = n_restarts
        self.rng = rng if rng is not None else np.random.default_rng()
        self.last_k: int = 0

    def localize(self, measurements: Sequence[Measurement]) -> List[BaselineEstimate]:
        sensor_positions, mean_cpm = mean_readings_by_sensor(measurements)
        masses = np.maximum(mean_cpm - self.background_cpm, 0.0)
        if masses.sum() <= 0:
            self.last_k = 0
            return []
        active = masses > 0
        points = sensor_positions[active]
        masses = masses[active]
        max_k = min(self.max_sources, len(points))

        best: Tuple[float, int, np.ndarray, np.ndarray] = (float("inf"), 0, None, None)
        effective_n = float(masses.sum())
        for k in range(1, max_k + 1):
            for _ in range(self.n_restarts):
                means, variances, mix, log_like = _weighted_em(
                    points, masses, k, self.rng
                )
                n_params = 4 * k - 1  # mean (2) + var (1) per comp + k-1 mixture
                score = -2.0 * log_like + n_params * math.log(max(effective_n, 2.0))
                if score < best[0]:
                    best = (score, k, means.copy(), mix.copy())
        _score, k, means, mix = best
        self.last_k = k
        if means is None:
            return []
        estimates = []
        total_excess = float(masses.sum())
        for j in range(k):
            # Strength from the component's share of the total excess mass,
            # inverted through the fading law at the mean sensor distance.
            d_sq = (
                (points[:, 0] - means[j, 0]) ** 2 + (points[:, 1] - means[j, 1]) ** 2
            )
            gain = (CPM_PER_MICROCURIE * self.efficiency / (1.0 + d_sq)).sum()
            strength = float(mix[j] * total_excess * len(points) / max(gain, 1e-9))
            estimates.append(
                BaselineEstimate(
                    x=float(np.clip(means[j, 0], 0, self.area[0])),
                    y=float(np.clip(means[j, 1], 0, self.area[1])),
                    strength=strength,
                )
            )
        return estimates
