"""The discretized convex formulation (Cheng & Singh style).

Assume a source may sit at each cell of a grid over the area; the expected
excess reading is then *linear* in the vector of per-cell strengths, and
non-negative least squares recovers a sparse-ish strength field.  Sources
are reported at local maxima of the recovered field.

The paper's criticism is cost: the design matrix is (sensors x cells), and
a fine grid over a large area makes the solve expensive (their reference
reports 209 s for 196 sensors).  The benchmark sweeps grid resolution to
expose exactly that accuracy/cost trade-off.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np
from scipy.optimize import nnls

from repro.baselines.base import BaselineEstimate, BatchLocalizer, mean_readings_by_sensor
from repro.physics.units import CPM_PER_MICROCURIE
from repro.sensors.measurement import Measurement


class GridNNLSLocalizer(BatchLocalizer):
    """Non-negative least squares over a grid of candidate source cells."""

    def __init__(
        self,
        area: Tuple[float, float],
        grid_cols: int = 20,
        grid_rows: int = 20,
        efficiency: float = 1.0,
        background_cpm: float = 0.0,
        min_strength: float = 1.5,
        cluster_radius: float = 25.0,
    ):
        if grid_cols < 2 or grid_rows < 2:
            raise ValueError(f"grid must be at least 2x2, got {grid_cols}x{grid_rows}")
        if cluster_radius <= 0:
            raise ValueError(f"cluster_radius must be positive, got {cluster_radius}")
        self.area = area
        self.grid_cols = grid_cols
        self.grid_rows = grid_rows
        self.efficiency = efficiency
        self.background_cpm = background_cpm
        self.min_strength = min_strength
        self.cluster_radius = cluster_radius

    def _grid_centers(self) -> np.ndarray:
        """(cells, 2) cell-center coordinates."""
        xs = (np.arange(self.grid_cols) + 0.5) * self.area[0] / self.grid_cols
        ys = (np.arange(self.grid_rows) + 0.5) * self.area[1] / self.grid_rows
        gx, gy = np.meshgrid(xs, ys)
        return np.column_stack((gx.ravel(), gy.ravel()))

    def solve_field(
        self, measurements: Sequence[Measurement]
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Recover the per-cell strength field.

        Returns ``(centers, strengths)`` with centers (cells, 2).
        """
        sensor_positions, mean_cpm = mean_readings_by_sensor(measurements)
        centers = self._grid_centers()
        d_sq = (
            (sensor_positions[:, 0, None] - centers[None, :, 0]) ** 2
            + (sensor_positions[:, 1, None] - centers[None, :, 1]) ** 2
        )
        design = CPM_PER_MICROCURIE * self.efficiency / (1.0 + d_sq)
        excess = np.maximum(mean_cpm - self.background_cpm, 0.0)
        strengths, _residual = nnls(design, excess)
        return centers, strengths

    def localize(self, measurements: Sequence[Measurement]) -> List[BaselineEstimate]:
        centers, strengths = self.solve_field(measurements)
        # NNLS on the highly coherent 1/(1+d^2) dictionary splits one
        # source's mass across a ring of cells (typically near the closest
        # sensors), so single-cell peaks are misleading.  Greedily cluster
        # active cells: the strongest unclaimed cell absorbs every active
        # cell within cluster_radius, and each cluster is reported at its
        # strength-weighted centroid with the summed strength.
        active = np.nonzero(strengths > 1e-9)[0]
        order = active[np.argsort(strengths[active])[::-1]]
        claimed = np.zeros(len(strengths), dtype=bool)
        estimates: List[BaselineEstimate] = []
        for idx in order:
            if claimed[idx]:
                continue
            d_sq = (
                (centers[active, 0] - centers[idx, 0]) ** 2
                + (centers[active, 1] - centers[idx, 1]) ** 2
            )
            members = active[(d_sq <= self.cluster_radius**2) & ~claimed[active]]
            claimed[members] = True
            total = float(strengths[members].sum())
            if total < self.min_strength:
                continue
            cx = float(np.dot(strengths[members], centers[members, 0]) / total)
            cy = float(np.dot(strengths[members], centers[members, 1]) / total)
            estimates.append(BaselineEstimate(x=cx, y=cy, strength=total))
        return estimates
