"""Estimating the number of sources K by information criteria.

The reference multi-source methods fit models for K = 1, 2, ... and pick
the K minimizing AIC or BIC -- the expensive statistical estimation the
paper's algorithm avoids.  Accuracy "degrades when the number of sources
increases" (the paper, citing Morelande et al.), which the baseline
benchmark reproduces.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.baselines.base import BaselineEstimate, BatchLocalizer
from repro.baselines.mle import MultiSourceMLE
from repro.sensors.measurement import Measurement


def aic(nll: float, n_params: int) -> float:
    """Akaike's Information Criterion for a fit with the given NLL."""
    return 2.0 * nll + 2.0 * n_params


def bic(nll: float, n_params: int, n_observations: int) -> float:
    """Bayesian Information Criterion."""
    if n_observations < 1:
        raise ValueError(f"need at least one observation, got {n_observations}")
    return 2.0 * nll + n_params * math.log(n_observations)


def estimate_source_count(
    measurements: Sequence[Measurement],
    area: Tuple[float, float],
    max_sources: int = 6,
    criterion: str = "bic",
    efficiency: float = 1.0,
    background_cpm: float = 0.0,
    n_starts: int = 6,
    rng: Optional[np.random.Generator] = None,
) -> Tuple[int, List[BaselineEstimate]]:
    """Fit K = 1..max_sources by MLE and return the criterion-optimal model.

    Returns ``(k, estimates)``.  The cost is the sum of the per-K MLE
    costs -- each a multi-start 3K-dimensional optimization -- which is the
    scalability wall the paper's Section I describes.
    """
    if criterion not in ("aic", "bic"):
        raise ValueError(f"criterion must be 'aic' or 'bic', got {criterion!r}")
    if max_sources < 1:
        raise ValueError(f"max_sources must be >= 1, got {max_sources}")
    rng = rng if rng is not None else np.random.default_rng()

    best_k = 1
    best_score = float("inf")
    best_estimates: List[BaselineEstimate] = []
    n_obs = len(measurements)
    for k in range(1, max_sources + 1):
        mle = MultiSourceMLE(
            k,
            area,
            efficiency=efficiency,
            background_cpm=background_cpm,
            n_starts=n_starts,
            rng=rng,
        )
        estimates = mle.localize(measurements)
        n_params = 3 * k
        if criterion == "aic":
            score = aic(mle.last_nll, n_params)
        else:
            score = bic(mle.last_nll, n_params, n_obs)
        if score < best_score:
            best_score = score
            best_k = k
            best_estimates = estimates
    return best_k, best_estimates


class MLEWithModelSelection(BatchLocalizer):
    """The full reference pipeline: estimate K, then report the MLE fit."""

    def __init__(
        self,
        area: Tuple[float, float],
        max_sources: int = 6,
        criterion: str = "bic",
        efficiency: float = 1.0,
        background_cpm: float = 0.0,
        n_starts: int = 6,
        rng: Optional[np.random.Generator] = None,
    ):
        self.area = area
        self.max_sources = max_sources
        self.criterion = criterion
        self.efficiency = efficiency
        self.background_cpm = background_cpm
        self.n_starts = n_starts
        self.rng = rng if rng is not None else np.random.default_rng()
        #: K chosen in the most recent localize() call.
        self.last_k: int = 0

    def localize(self, measurements: Sequence[Measurement]) -> List[BaselineEstimate]:
        k, estimates = estimate_source_count(
            measurements,
            self.area,
            max_sources=self.max_sources,
            criterion=self.criterion,
            efficiency=self.efficiency,
            background_cpm=self.background_cpm,
            n_starts=self.n_starts,
            rng=self.rng,
        )
        self.last_k = k
        return estimates
