"""Obstacles: shielding polygons with an attenuation coefficient."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.geometry.polygon import Polygon
from repro.geometry.primitives import Point, Segment


@dataclass
class Obstacle:
    """A homogeneous shielding obstacle.

    Combines a polygonal footprint with a linear attenuation coefficient
    ``mu`` (cm^-1).  The transport model integrates the chord length of the
    sensor--source ray through the footprint and attenuates by
    ``exp(-mu * chord)`` per Eq. (2)/(3).
    """

    polygon: Polygon
    mu: float
    label: str = field(default="")

    def __post_init__(self) -> None:
        if self.mu < 0:
            raise ValueError(f"attenuation coefficient must be non-negative, got {self.mu}")

    def path_thickness(self, x0: float, y0: float, x1: float, y1: float) -> float:
        """Thickness of this obstacle along the ray (x0, y0) -> (x1, y1).

        This is the ``l_b`` term of Eq. (3): the total length of the ray
        inside the obstacle's footprint.
        """
        return self.polygon.chord_length(Segment(Point(x0, y0), Point(x1, y1)))

    def attenuation_exponent(self, x0: float, y0: float, x1: float, y1: float) -> float:
        """``mu_b * l_b`` for this obstacle along the given ray."""
        return self.mu * self.path_thickness(x0, y0, x1, y1)

    def contains(self, x: float, y: float) -> bool:
        """True if (x, y) lies inside (or on the boundary of) the obstacle."""
        return self.polygon.contains(Point(x, y))
