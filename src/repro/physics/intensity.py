"""Radiation transport: Eq. (1)--(4) of the paper.

Three call styles are provided:

* Scalar/obstacle-aware functions used by the *truth* simulator (one call
  per sensor--source ray, with chord-length integration over obstacles).
* Vectorized free-space functions used by the *localizer's* forward model
  (one call per sensor over thousands of particles).  Per the paper, the
  localizer never knows about obstacles, so its hot path is obstacle-free
  and fully vectorized.
* Batched obstacle-aware transport (:func:`batched_expected_cpm`) for the
  ground-truth side: evaluates Eq. (4) for many points against all sources
  at once.  The expensive part -- per-(point, source) obstacle chord
  lengths -- is exposed separately as
  :func:`attenuation_exponent_matrix` so static geometry can be computed
  once per scenario and reused (see ``SensorNetwork.expected_rates``).
"""

from __future__ import annotations

import math
from typing import Iterable, Sequence

import numpy as np

from repro.physics.obstacle import Obstacle
from repro.physics.source import RadiationSource
from repro.physics.units import CPM_PER_MICROCURIE


def free_space_intensity(
    x: np.ndarray | float,
    y: np.ndarray | float,
    source_x: np.ndarray | float,
    source_y: np.ndarray | float,
    strength: np.ndarray | float,
) -> np.ndarray | float:
    """Eq. (1): ``I_FS = A_str / (1 + |x - A_pos|^2)``.

    All arguments broadcast; pass arrays for vectorized evaluation (e.g.
    one sensor position against an array of particle hypotheses).
    """
    dx = np.asarray(x, dtype=float) - np.asarray(source_x, dtype=float)
    dy = np.asarray(y, dtype=float) - np.asarray(source_y, dtype=float)
    result = np.asarray(strength, dtype=float) / (1.0 + dx * dx + dy * dy)
    if np.ndim(result) == 0:
        return float(result)
    return result


def shielded_intensity(strength: float, mu: float, thickness: float) -> float:
    """Eq. (2): intensity after passing through ``thickness`` of material."""
    if thickness < 0:
        raise ValueError(f"thickness must be non-negative, got {thickness}")
    return strength * math.exp(-mu * thickness)


def transport_intensity(
    x: float,
    y: float,
    source: RadiationSource,
    obstacles: Sequence[Obstacle] = (),
) -> float:
    """Eq. (3): free-space fading plus attenuation by every crossed obstacle."""
    r_sq = (x - source.x) ** 2 + (y - source.y) ** 2
    exponent = 0.0
    for obstacle in obstacles:
        exponent += obstacle.attenuation_exponent(x, y, source.x, source.y)
    return source.strength / (1.0 + r_sq) * math.exp(-exponent)


def expected_cpm(
    x: float,
    y: float,
    sources: Iterable[RadiationSource],
    obstacles: Sequence[Obstacle] = (),
    efficiency: float = 1.0,
    background_cpm: float = 0.0,
) -> float:
    """Eq. (4): expected counts per minute at location (x, y).

    Sums the transported intensity of every source, scales by the CPM
    conversion constant and the sensor efficiency ``E_i``, and adds the
    background rate ``B_i``.
    """
    total_intensity = sum(transport_intensity(x, y, s, obstacles) for s in sources)
    return CPM_PER_MICROCURIE * efficiency * total_intensity + background_cpm


def expected_cpm_free_space(
    sensor_x: float,
    sensor_y: float,
    source_x: np.ndarray,
    source_y: np.ndarray,
    strength: np.ndarray,
    efficiency: float = 1.0,
    background_cpm: float = 0.0,
) -> np.ndarray:
    """Vectorized Eq. (4) for single-source hypotheses in free space.

    This is the localizer's forward model: each (source_x[i], source_y[i],
    strength[i]) is one particle's hypothesis, and the return value is the
    expected CPM at the sensor *if that particle were the only source*.
    """
    intensity = free_space_intensity(sensor_x, sensor_y, source_x, source_y, strength)
    return CPM_PER_MICROCURIE * efficiency * np.asarray(intensity) + background_cpm


def attenuation_exponent_matrix(
    xs: np.ndarray,
    ys: np.ndarray,
    sources: Sequence[RadiationSource],
    obstacles: Sequence[Obstacle] = (),
) -> np.ndarray:
    """Per-(point, source) total attenuation exponents ``sum_b mu_b * l_b``.

    Returns a ``(n_points, n_sources)`` matrix where entry ``[p, s]`` is
    the Eq.-(3) exponent for the ray from point ``p`` to source ``s``.
    Chord-length integration is inherently per-ray, but the vast majority
    of rays in a grid or sensor layout never touch an obstacle: a
    vectorized bounding-box test rejects those wholesale, and only the
    surviving pairs pay for the exact polygon clipping.

    This matrix depends only on *geometry* (point positions, source
    positions, obstacle footprints), never on strengths or backgrounds, so
    callers with static layouts compute it once and reuse it across rate
    re-evaluations.
    """
    from repro.geometry.primitives import EPS

    xs = np.asarray(xs, dtype=float).ravel()
    ys = np.asarray(ys, dtype=float).ravel()
    sources = list(sources)
    exponents = np.zeros((len(xs), len(sources)), dtype=float)
    if not obstacles or not len(xs) or not sources:
        return exponents
    sx = np.array([s.x for s in sources], dtype=float)
    sy = np.array([s.y for s in sources], dtype=float)
    lo_x = np.minimum(xs[:, None], sx[None, :])
    hi_x = np.maximum(xs[:, None], sx[None, :])
    lo_y = np.minimum(ys[:, None], sy[None, :])
    hi_y = np.maximum(ys[:, None], sy[None, :])
    for obstacle in obstacles:
        min_x, min_y, max_x, max_y = obstacle.polygon.bbox
        # Same rejection test Polygon.chord_length applies per ray, but
        # evaluated for every (point, source) pair in one shot.
        overlap = (
            (hi_x >= min_x - EPS)
            & (lo_x <= max_x + EPS)
            & (hi_y >= min_y - EPS)
            & (lo_y <= max_y + EPS)
        )
        for p, s in zip(*np.nonzero(overlap)):
            exponents[p, s] += obstacle.attenuation_exponent(
                xs[p], ys[p], sx[s], sy[s]
            )
    return exponents


def batched_expected_cpm(
    xs: np.ndarray,
    ys: np.ndarray,
    sources: Sequence[RadiationSource],
    obstacles: Sequence[Obstacle] = (),
    efficiency: np.ndarray | float = 1.0,
    background_cpm: np.ndarray | float = 0.0,
    exponents: np.ndarray | None = None,
    backend=None,
) -> np.ndarray:
    """Vectorized Eq. (4): expected CPM at many points, all sources summed.

    ``efficiency`` and ``background_cpm`` broadcast against the points
    (scalars or per-point arrays).  Pass a precomputed ``exponents`` matrix
    (from :func:`attenuation_exponent_matrix`) to skip the obstacle
    geometry entirely -- the static-layout fast path.

    Sources are accumulated in order with a left fold, matching the scalar
    :func:`expected_cpm` reference summation exactly; obstacle-free rays
    are bitwise-identical to the scalar path.  An accelerated ``backend``
    (:mod:`repro.core.backend`) replaces the fold with a single
    broadcasted pass -- tolerance parity only, so ground-truth transport
    (the sensor network) never passes one.
    """
    xs = np.asarray(xs, dtype=float).ravel()
    ys = np.asarray(ys, dtype=float).ravel()
    sources = list(sources)
    if exponents is None:
        exponents = attenuation_exponent_matrix(xs, ys, sources, obstacles)
    if backend is not None and backend.accelerated:
        total = backend.source_intensity_fold(xs, ys, sources, exponents)
    else:
        total = np.zeros(len(xs), dtype=float)
        for j, source in enumerate(sources):
            dx = xs - source.x
            dy = ys - source.y
            total += (
                source.strength / (1.0 + dx * dx + dy * dy) * np.exp(-exponents[:, j])
            )
    return (
        CPM_PER_MICROCURIE * np.asarray(efficiency, dtype=float) * total
        + np.asarray(background_cpm, dtype=float)
    )


def expected_cpm_grid(
    xs: np.ndarray,
    ys: np.ndarray,
    sources: Sequence[RadiationSource],
    obstacles: Sequence[Obstacle] = (),
    efficiency: float = 1.0,
    background_cpm: float = 0.0,
) -> np.ndarray:
    """Expected CPM sampled on the grid ``ys x xs`` (rows are y).

    Used by the visualization helpers to draw intensity heat maps.
    Evaluates the whole grid through the batched transport path (free-space
    term fully vectorized, obstacle chords only for bbox-surviving rays)
    instead of one scalar Eq.-(4) call per cell.
    """
    xs = np.asarray(xs, dtype=float).ravel()
    ys = np.asarray(ys, dtype=float).ravel()
    gx, gy = np.meshgrid(xs, ys)
    values = batched_expected_cpm(
        gx.ravel(), gy.ravel(), sources, obstacles, efficiency, background_cpm
    )
    return values.reshape(len(ys), len(xs))


class RadiationField:
    """The ground-truth radiation environment of a scenario.

    Bundles the sources and obstacles and answers expected-CPM queries at
    arbitrary locations.  The *simulator* uses this (obstacle-aware) field;
    the *localizer* never sees it.
    """

    def __init__(
        self,
        sources: Sequence[RadiationSource],
        obstacles: Sequence[Obstacle] = (),
    ):
        self.sources = list(sources)
        self.obstacles = list(obstacles)

    def expected_cpm_at(
        self, x: float, y: float, efficiency: float = 1.0, background_cpm: float = 0.0
    ) -> float:
        """Expected CPM at (x, y) per Eq. (4)."""
        return expected_cpm(
            x, y, self.sources, self.obstacles, efficiency, background_cpm
        )

    def expected_cpm_batch(
        self,
        xs: np.ndarray,
        ys: np.ndarray,
        efficiency: np.ndarray | float = 1.0,
        background_cpm: np.ndarray | float = 0.0,
        exponents: np.ndarray | None = None,
    ) -> np.ndarray:
        """Vectorized Eq. (4) at many points (see :func:`batched_expected_cpm`)."""
        return batched_expected_cpm(
            xs, ys, self.sources, self.obstacles, efficiency, background_cpm, exponents
        )

    def attenuation_exponents(self, xs: np.ndarray, ys: np.ndarray) -> np.ndarray:
        """Static per-(point, source) exponent matrix for this field's geometry."""
        return attenuation_exponent_matrix(xs, ys, self.sources, self.obstacles)

    def intensity_at(self, x: float, y: float) -> float:
        """Total transported intensity (uCi-equivalent) at (x, y), Eq. (3)."""
        return sum(transport_intensity(x, y, s, self.obstacles) for s in self.sources)

    def with_obstacles(self, obstacles: Sequence[Obstacle]) -> "RadiationField":
        """A copy of this field with a different obstacle set."""
        return RadiationField(self.sources, obstacles)

    def without_obstacles(self) -> "RadiationField":
        """A copy of this field with all obstacles removed."""
        return RadiationField(self.sources, ())
