"""Radiation transport: Eq. (1)--(4) of the paper.

Two call styles are provided:

* Scalar/obstacle-aware functions used by the *truth* simulator (one call
  per sensor--source ray, with chord-length integration over obstacles).
* Vectorized free-space functions used by the *localizer's* forward model
  (one call per sensor over thousands of particles).  Per the paper, the
  localizer never knows about obstacles, so its hot path is obstacle-free
  and fully vectorized.
"""

from __future__ import annotations

import math
from typing import Iterable, Sequence

import numpy as np

from repro.physics.obstacle import Obstacle
from repro.physics.source import RadiationSource
from repro.physics.units import CPM_PER_MICROCURIE


def free_space_intensity(
    x: np.ndarray | float,
    y: np.ndarray | float,
    source_x: np.ndarray | float,
    source_y: np.ndarray | float,
    strength: np.ndarray | float,
) -> np.ndarray | float:
    """Eq. (1): ``I_FS = A_str / (1 + |x - A_pos|^2)``.

    All arguments broadcast; pass arrays for vectorized evaluation (e.g.
    one sensor position against an array of particle hypotheses).
    """
    dx = np.asarray(x, dtype=float) - np.asarray(source_x, dtype=float)
    dy = np.asarray(y, dtype=float) - np.asarray(source_y, dtype=float)
    result = np.asarray(strength, dtype=float) / (1.0 + dx * dx + dy * dy)
    if np.ndim(result) == 0:
        return float(result)
    return result


def shielded_intensity(strength: float, mu: float, thickness: float) -> float:
    """Eq. (2): intensity after passing through ``thickness`` of material."""
    if thickness < 0:
        raise ValueError(f"thickness must be non-negative, got {thickness}")
    return strength * math.exp(-mu * thickness)


def transport_intensity(
    x: float,
    y: float,
    source: RadiationSource,
    obstacles: Sequence[Obstacle] = (),
) -> float:
    """Eq. (3): free-space fading plus attenuation by every crossed obstacle."""
    r_sq = (x - source.x) ** 2 + (y - source.y) ** 2
    exponent = 0.0
    for obstacle in obstacles:
        exponent += obstacle.attenuation_exponent(x, y, source.x, source.y)
    return source.strength / (1.0 + r_sq) * math.exp(-exponent)


def expected_cpm(
    x: float,
    y: float,
    sources: Iterable[RadiationSource],
    obstacles: Sequence[Obstacle] = (),
    efficiency: float = 1.0,
    background_cpm: float = 0.0,
) -> float:
    """Eq. (4): expected counts per minute at location (x, y).

    Sums the transported intensity of every source, scales by the CPM
    conversion constant and the sensor efficiency ``E_i``, and adds the
    background rate ``B_i``.
    """
    total_intensity = sum(transport_intensity(x, y, s, obstacles) for s in sources)
    return CPM_PER_MICROCURIE * efficiency * total_intensity + background_cpm


def expected_cpm_free_space(
    sensor_x: float,
    sensor_y: float,
    source_x: np.ndarray,
    source_y: np.ndarray,
    strength: np.ndarray,
    efficiency: float = 1.0,
    background_cpm: float = 0.0,
) -> np.ndarray:
    """Vectorized Eq. (4) for single-source hypotheses in free space.

    This is the localizer's forward model: each (source_x[i], source_y[i],
    strength[i]) is one particle's hypothesis, and the return value is the
    expected CPM at the sensor *if that particle were the only source*.
    """
    intensity = free_space_intensity(sensor_x, sensor_y, source_x, source_y, strength)
    return CPM_PER_MICROCURIE * efficiency * np.asarray(intensity) + background_cpm


def expected_cpm_grid(
    xs: np.ndarray,
    ys: np.ndarray,
    sources: Sequence[RadiationSource],
    obstacles: Sequence[Obstacle] = (),
    efficiency: float = 1.0,
    background_cpm: float = 0.0,
) -> np.ndarray:
    """Expected CPM sampled on the grid ``ys x xs`` (rows are y).

    Used by the visualization helpers to draw intensity heat maps; this is
    obstacle-aware and therefore deliberately not vectorized over obstacles.
    """
    grid = np.zeros((len(ys), len(xs)), dtype=float)
    for row, y in enumerate(ys):
        for col, x in enumerate(xs):
            grid[row, col] = expected_cpm(
                float(x), float(y), sources, obstacles, efficiency, background_cpm
            )
    return grid


class RadiationField:
    """The ground-truth radiation environment of a scenario.

    Bundles the sources and obstacles and answers expected-CPM queries at
    arbitrary locations.  The *simulator* uses this (obstacle-aware) field;
    the *localizer* never sees it.
    """

    def __init__(
        self,
        sources: Sequence[RadiationSource],
        obstacles: Sequence[Obstacle] = (),
    ):
        self.sources = list(sources)
        self.obstacles = list(obstacles)

    def expected_cpm_at(
        self, x: float, y: float, efficiency: float = 1.0, background_cpm: float = 0.0
    ) -> float:
        """Expected CPM at (x, y) per Eq. (4)."""
        return expected_cpm(
            x, y, self.sources, self.obstacles, efficiency, background_cpm
        )

    def intensity_at(self, x: float, y: float) -> float:
        """Total transported intensity (uCi-equivalent) at (x, y), Eq. (3)."""
        return sum(transport_intensity(x, y, s, self.obstacles) for s in self.sources)

    def with_obstacles(self, obstacles: Sequence[Obstacle]) -> "RadiationField":
        """A copy of this field with a different obstacle set."""
        return RadiationField(self.sources, obstacles)

    def without_obstacles(self) -> "RadiationField":
        """A copy of this field with all obstacles removed."""
        return RadiationField(self.sources, ())
