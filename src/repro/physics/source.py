"""Radiation point sources (the ``A_j`` of the paper)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Tuple

import numpy as np


@dataclass(frozen=True)
class RadiationSource:
    """A point source parameterized by position (x, y) and strength (uCi).

    This is the three-value vector ``A_j = <A_x, A_y, A_str>`` of the
    paper's problem formulation.  Sources are immutable; a "moving source"
    in the simulator is a sequence of sources over time.
    """

    x: float
    y: float
    strength: float
    label: str = field(default="", compare=False)

    def __post_init__(self) -> None:
        if self.strength < 0:
            raise ValueError(f"source strength must be non-negative, got {self.strength}")

    @property
    def position(self) -> Tuple[float, float]:
        """``A_pos = (A_x, A_y)``."""
        return (self.x, self.y)

    def position_array(self) -> np.ndarray:
        """Position as a (2,) float array."""
        return np.array([self.x, self.y], dtype=float)

    def as_array(self) -> np.ndarray:
        """Full parameter vector (x, y, strength) as a (3,) float array."""
        return np.array([self.x, self.y, self.strength], dtype=float)

    def distance_to(self, x: float, y: float) -> float:
        """Euclidean distance from the source to (x, y)."""
        return float(np.hypot(self.x - x, self.y - y))

    def moved_to(self, x: float, y: float) -> "RadiationSource":
        """A copy of this source relocated to (x, y)."""
        return RadiationSource(x, y, self.strength, self.label)

    def __str__(self) -> str:
        tag = f" {self.label}" if self.label else ""
        return f"Source{tag}({self.x:.1f}, {self.y:.1f}, {self.strength:.1f} uCi)"
