"""Energy-dependent gamma attenuation (the full Hubbell-table view).

The paper's transport model fixes the gamma energy at 1 MeV (its footnote)
and cites Hubbell's NSRDS-NBS 29 tables, which tabulate mass attenuation
coefficients from 10 keV to 100 GeV.  This module carries a compact
excerpt of those tables and interpolates them, so the simulator can model
isotopes other than the 1 MeV reference -- e.g. Cs-137 (662 keV) and
Co-60 (1.17/1.33 MeV), the two isotopes most discussed in the dirty-bomb
literature the paper cites.

Data: mass attenuation coefficients mu/rho in cm^2/g at selected
energies, log-log interpolated (the standard practice for these tables;
piecewise power laws fit photon cross sections well away from absorption
edges).  Linear attenuation mu = (mu/rho) * density.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Tuple

import numpy as np

#: Energies (MeV) at which the excerpt is tabulated.
TABLE_ENERGIES_MEV = (0.1, 0.2, 0.5, 0.662, 1.0, 1.25, 2.0, 5.0)

#: Mass attenuation coefficients mu/rho (cm^2/g) per material at the
#: energies above.  Representative values from the NIST/Hubbell tables.
MASS_ATTENUATION: Dict[str, Tuple[float, ...]] = {
    "lead":     (5.549, 0.999, 0.161, 0.110, 0.0710, 0.0589, 0.0455, 0.0426),
    "steel":    (0.372, 0.146, 0.0840, 0.0740, 0.0599, 0.0532, 0.0425, 0.0314),
    "concrete": (0.169, 0.124, 0.0870, 0.0786, 0.0637, 0.0570, 0.0445, 0.0287),
    "water":    (0.171, 0.137, 0.0969, 0.0862, 0.0707, 0.0632, 0.0494, 0.0303),
    "wood":     (0.156, 0.124, 0.0883, 0.0787, 0.0644, 0.0576, 0.0450, 0.0277),
}

#: Densities (g/cm^3) matching repro.physics.attenuation.MATERIALS.
DENSITIES: Dict[str, float] = {
    "lead": 11.35,
    "steel": 7.87,
    "concrete": 2.30,
    "water": 1.00,
    "wood": 0.55,
}

#: Gamma energies (MeV) of the isotopes the dirty-bomb literature names.
ISOTOPE_ENERGIES_MEV: Dict[str, float] = {
    "Cs-137": 0.662,
    "Co-60": 1.25,     # mean of the 1.17 / 1.33 MeV pair
    "Ir-192": 0.38,
    "Am-241": 0.0595,  # below our excerpt; clamped on lookup
}


@dataclass(frozen=True)
class EnergySpectrum:
    """A discrete emission spectrum: energies (MeV) and line weights."""

    energies_mev: Tuple[float, ...]
    weights: Tuple[float, ...]

    def __post_init__(self) -> None:
        if len(self.energies_mev) != len(self.weights):
            raise ValueError("energies and weights must have equal length")
        if not self.energies_mev:
            raise ValueError("spectrum needs at least one line")
        if any(e <= 0 for e in self.energies_mev):
            raise ValueError("energies must be positive")
        if any(w < 0 for w in self.weights) or sum(self.weights) <= 0:
            raise ValueError("weights must be non-negative with positive sum")

    def normalized_weights(self) -> Tuple[float, ...]:
        total = sum(self.weights)
        return tuple(w / total for w in self.weights)


#: Canonical spectra.
SPECTRA: Dict[str, EnergySpectrum] = {
    "Cs-137": EnergySpectrum((0.662,), (1.0,)),
    "Co-60": EnergySpectrum((1.17, 1.33), (1.0, 1.0)),
    "reference-1MeV": EnergySpectrum((1.0,), (1.0,)),
}


def mass_attenuation_coefficient(material: str, energy_mev: float) -> float:
    """mu/rho (cm^2/g) at ``energy_mev``, log-log interpolated.

    Energies outside the excerpt are clamped to its ends (adequate for
    the 0.1-5 MeV range that matters here; Am-241's 60 keV line lands on
    the clamp and is documented as such).
    """
    try:
        table = MASS_ATTENUATION[material]
    except KeyError:
        known = ", ".join(sorted(MASS_ATTENUATION))
        raise KeyError(
            f"no spectral data for {material!r}; known materials: {known}"
        ) from None
    if energy_mev <= 0:
        raise ValueError(f"energy must be positive, got {energy_mev}")

    energies = np.array(TABLE_ENERGIES_MEV)
    values = np.array(table)
    energy = min(max(energy_mev, energies[0]), energies[-1])
    log_result = np.interp(
        math.log(energy), np.log(energies), np.log(values)
    )
    return float(math.exp(log_result))


def linear_attenuation_coefficient(material: str, energy_mev: float) -> float:
    """Linear mu (cm^-1) = (mu/rho) * density at the given energy."""
    return mass_attenuation_coefficient(material, energy_mev) * DENSITIES[material]


def effective_mu_for_spectrum(
    material: str,
    spectrum: EnergySpectrum,
    thickness: float = 10.0,
) -> float:
    """A single effective mu reproducing a spectrum's transmission.

    Multi-line spectra do not attenuate as a pure exponential (the harder
    line survives better), so a single mu is only exact at one thickness.
    We match the transmitted fraction at ``thickness`` -- pick the
    thickness scale of the obstacles being modeled.
    """
    if thickness <= 0:
        raise ValueError(f"thickness must be positive, got {thickness}")
    weights = spectrum.normalized_weights()
    transmitted = sum(
        w * math.exp(-linear_attenuation_coefficient(material, e) * thickness)
        for e, w in zip(spectrum.energies_mev, weights)
    )
    if transmitted <= 0:
        raise ValueError("spectrum fully absorbed; reduce the thickness scale")
    return -math.log(transmitted) / thickness


def half_value_layer(material: str, energy_mev: float) -> float:
    """Thickness (cm) halving the intensity at the given energy."""
    return math.log(2.0) / linear_attenuation_coefficient(material, energy_mev)
