"""Unit conventions and conversions.

The paper works in:

* source strength -- micro-Curies (uCi), a positive real;
* sensor readings -- counts per minute (CPM);
* length -- abstract units (1 unit = 1 cm in the problem formulation).

Eq. (4) converts source strength (after geometric and shielding losses) into
an expected count rate using the constant ``2.22e6`` CPM per uCi: one Curie
is 3.7e10 decays/s, so 1 uCi = 3.7e4 decays/s = 2.22e6 decays/min.
"""

from __future__ import annotations

#: Conversion factor from micro-Curies to counts per minute (Eq. 4).
CPM_PER_MICROCURIE = 2.22e6


def microcurie_to_cpm(strength_uci: float, efficiency: float = 1.0) -> float:
    """Expected CPM induced by ``strength_uci`` at unit intensity.

    ``efficiency`` is the sensor's counting-efficiency constant ``E_i``.
    """
    if strength_uci < 0:
        raise ValueError(f"source strength must be non-negative, got {strength_uci}")
    if efficiency < 0:
        raise ValueError(f"sensor efficiency must be non-negative, got {efficiency}")
    return CPM_PER_MICROCURIE * efficiency * strength_uci


def cpm_to_microcurie(cpm: float, efficiency: float = 1.0) -> float:
    """Inverse of :func:`microcurie_to_cpm`."""
    if cpm < 0:
        raise ValueError(f"count rate must be non-negative, got {cpm}")
    if efficiency <= 0:
        raise ValueError(f"sensor efficiency must be positive, got {efficiency}")
    return cpm / (CPM_PER_MICROCURIE * efficiency)
