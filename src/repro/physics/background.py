"""Background radiation models.

Every sensor records a background rate ``B_i`` (CPM) from cosmic rays and
naturally occurring isotopes.  The paper evaluates constant backgrounds of
0, 5, 10 and 50 CPM; typical environmental background is 5--20 CPM.  A
spatial-gradient model is provided as an extension for robustness studies
(the localizer assumes a constant background, so a gradient stresses its
model mismatch tolerance).
"""

from __future__ import annotations

from abc import ABC, abstractmethod


class BackgroundModel(ABC):
    """Interface: background count rate as a function of position."""

    @abstractmethod
    def rate_at(self, x: float, y: float) -> float:
        """Background rate (CPM) at position (x, y)."""

    def mean_rate(self) -> float:
        """Nominal rate a calibrated localizer would assume."""
        return self.rate_at(0.0, 0.0)


class ConstantBackground(BackgroundModel):
    """Uniform background ``B_i = rate`` everywhere (the paper's model)."""

    def __init__(self, rate_cpm: float):
        if rate_cpm < 0:
            raise ValueError(f"background rate must be non-negative, got {rate_cpm}")
        self.rate_cpm = float(rate_cpm)

    def rate_at(self, x: float, y: float) -> float:
        return self.rate_cpm

    def mean_rate(self) -> float:
        return self.rate_cpm

    def __repr__(self) -> str:
        return f"ConstantBackground({self.rate_cpm} CPM)"


class SpatialGradientBackground(BackgroundModel):
    """Background that varies linearly across the area.

    ``rate(x, y) = base + gx * x + gy * y``, clipped at zero.  Models e.g.
    granite-rich terrain on one side of the surveillance area.
    """

    def __init__(self, base_cpm: float, gx: float = 0.0, gy: float = 0.0):
        if base_cpm < 0:
            raise ValueError(f"base background must be non-negative, got {base_cpm}")
        self.base_cpm = float(base_cpm)
        self.gx = float(gx)
        self.gy = float(gy)

    def rate_at(self, x: float, y: float) -> float:
        return max(0.0, self.base_cpm + self.gx * x + self.gy * y)

    def mean_rate(self) -> float:
        return self.base_cpm

    def __repr__(self) -> str:
        return (
            f"SpatialGradientBackground(base={self.base_cpm}, "
            f"gx={self.gx}, gy={self.gy})"
        )
