"""Gamma attenuation coefficients for obstacle materials.

The paper cites Hubbell's tables (NSRDS-NBS 29) for linear attenuation
coefficients ``mu`` and notes that 1 cm of lead absorbs roughly as much
1 MeV gamma radiation as 6 cm of concrete.  We embed a small table of
representative linear attenuation coefficients at 1 MeV (the energy the
paper's footnote fixes).  Values are in cm^-1; lengths in the simulator are
abstract units = cm.

The paper's evaluation uses an obstacle with ``mu = 0.0693``, chosen so the
intensity halves every 10 units of thickness; :func:`mu_for_half_value`
recovers exactly that construction.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict


@dataclass(frozen=True)
class Material:
    """A shielding material with a linear attenuation coefficient.

    ``mu`` is the linear attenuation coefficient (cm^-1) for ~1 MeV gamma
    rays; ``density`` (g/cm^3) is informational.
    """

    name: str
    mu: float
    density: float

    def half_value_layer(self) -> float:
        """Thickness (cm) that halves the transmitted intensity."""
        return math.log(2.0) / self.mu

    def transmission(self, thickness: float) -> float:
        """Fraction of intensity transmitted through ``thickness`` cm."""
        if thickness < 0:
            raise ValueError(f"thickness must be non-negative, got {thickness}")
        return math.exp(-self.mu * thickness)


#: Representative 1 MeV linear attenuation coefficients (cm^-1).
#: Lead/concrete ratio matches the paper's "1 cm lead ~ 6 cm concrete".
MATERIALS: Dict[str, Material] = {
    "lead": Material("lead", mu=0.776, density=11.35),
    "steel": Material("steel", mu=0.468, density=7.87),
    "concrete": Material("concrete", mu=0.137, density=2.30),
    "water": Material("water", mu=0.0707, density=1.00),
    "wood": Material("wood", mu=0.040, density=0.55),
    # The paper's evaluation obstacle: half-value every 10 length units.
    "paper_obstacle": Material("paper_obstacle", mu=0.0693, density=1.00),
}


def attenuation_coefficient(material: str) -> float:
    """Linear attenuation coefficient for a named material.

    Raises ``KeyError`` with the available names if the material is unknown.
    """
    try:
        return MATERIALS[material].mu
    except KeyError:
        known = ", ".join(sorted(MATERIALS))
        raise KeyError(f"unknown material {material!r}; known materials: {known}") from None


def half_value_thickness(mu: float) -> float:
    """Thickness at which ``exp(-mu * l)`` reaches 1/2."""
    if mu <= 0:
        raise ValueError(f"attenuation coefficient must be positive, got {mu}")
    return math.log(2.0) / mu


def mu_for_half_value(thickness: float) -> float:
    """The ``mu`` whose half-value layer is ``thickness``.

    ``mu_for_half_value(10.0)`` reproduces the paper's 0.0693 obstacle.
    """
    if thickness <= 0:
        raise ValueError(f"half-value thickness must be positive, got {thickness}")
    return math.log(2.0) / thickness
