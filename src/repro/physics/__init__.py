"""Radiation physics substrate.

Implements the measurement model of Section III of the paper:

* Eq. (1) free-space intensity  ``I_FS(x, A) = A_str / (1 + |x - A_pos|^2)``
* Eq. (2) shielded intensity    ``I_S(l, A) = A_str * exp(-mu * l)``
* Eq. (3) combined transport through free space and obstacles
* Eq. (4) expected sensor counts ``I_i = 2.22e6 * E_i * sum_j I(S_i, A_j) + B_i``

with measurements drawn from a Poisson process at rate ``I_i``.
"""

from repro.physics.units import (
    CPM_PER_MICROCURIE,
    cpm_to_microcurie,
    microcurie_to_cpm,
)
from repro.physics.attenuation import (
    Material,
    MATERIALS,
    attenuation_coefficient,
    half_value_thickness,
    mu_for_half_value,
)
from repro.physics.source import RadiationSource
from repro.physics.obstacle import Obstacle
from repro.physics.intensity import (
    free_space_intensity,
    shielded_intensity,
    transport_intensity,
    expected_cpm,
    expected_cpm_grid,
    RadiationField,
)
from repro.physics.background import (
    BackgroundModel,
    ConstantBackground,
    SpatialGradientBackground,
)
from repro.physics.spectrum import (
    EnergySpectrum,
    ISOTOPE_ENERGIES_MEV,
    SPECTRA,
    effective_mu_for_spectrum,
    linear_attenuation_coefficient,
    mass_attenuation_coefficient,
)

__all__ = [
    "CPM_PER_MICROCURIE",
    "cpm_to_microcurie",
    "microcurie_to_cpm",
    "Material",
    "MATERIALS",
    "attenuation_coefficient",
    "half_value_thickness",
    "mu_for_half_value",
    "RadiationSource",
    "Obstacle",
    "free_space_intensity",
    "shielded_intensity",
    "transport_intensity",
    "expected_cpm",
    "expected_cpm_grid",
    "RadiationField",
    "BackgroundModel",
    "ConstantBackground",
    "SpatialGradientBackground",
    "EnergySpectrum",
    "ISOTOPE_ENERGIES_MEV",
    "SPECTRA",
    "effective_mu_for_spectrum",
    "linear_attenuation_coefficient",
    "mass_attenuation_coefficient",
]
