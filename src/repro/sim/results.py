"""Result containers for simulation runs."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.core.diagnostics import PopulationHealth
from repro.core.estimator import SourceEstimate
from repro.core.particles import ParticleSet
from repro.eval.aggregate import mean_series
from repro.eval.metrics import StepMetrics


@dataclass
class StepRecord:
    """Everything recorded at the end of one time step."""

    metrics: StepMetrics
    estimates: List[SourceEstimate]
    #: Mean wall-clock seconds per localizer iteration within this step.
    mean_iteration_seconds: float
    #: Number of measurements processed in this step.
    n_measurements: int
    #: Optional particle snapshot (only for steps the caller asked for).
    snapshot: Optional[ParticleSet] = None
    #: Population health (ESS, spread, strength stats) at the end of the
    #: step; recorded by the runner unless health recording is disabled.
    health: Optional[PopulationHealth] = None
    #: Whether the run's ConvergenceMonitor had declared convergence by
    #: the end of this step.
    converged: bool = False


@dataclass
class RunResult:
    """One complete run of a scenario."""

    scenario_name: str
    source_labels: List[str]
    steps: List[StepRecord] = field(default_factory=list)

    @property
    def n_steps(self) -> int:
        return len(self.steps)

    def error_series(self, source_index: int) -> List[float]:
        """Per-step localization error for one source (inf = missed)."""
        return [s.metrics.errors[source_index] for s in self.steps]

    def false_positive_series(self) -> List[float]:
        return [float(s.metrics.false_positives) for s in self.steps]

    def false_negative_series(self) -> List[float]:
        return [float(s.metrics.false_negatives) for s in self.steps]

    def estimate_count_series(self) -> List[float]:
        return [float(s.metrics.n_estimates) for s in self.steps]

    def mean_iteration_seconds(self) -> float:
        """Average per-iteration wall time across the whole run."""
        if not self.steps:
            return float("nan")
        return float(np.mean([s.mean_iteration_seconds for s in self.steps]))

    def ess_series(self) -> List[float]:
        """Per-step effective sample size (NaN where health was not kept)."""
        return [
            s.health.effective_sample_size if s.health is not None else float("nan")
            for s in self.steps
        ]

    def health_series(self) -> List[Optional[PopulationHealth]]:
        """Per-step population-health snapshots (None where not kept)."""
        return [s.health for s in self.steps]

    @property
    def converged_at(self) -> Optional[int]:
        """First step index at which the run was converged, or None."""
        for i, record in enumerate(self.steps):
            if record.converged:
                return i
        return None

    def final_estimates(self) -> List[SourceEstimate]:
        if not self.steps:
            return []
        return self.steps[-1].estimates


@dataclass
class RepeatedRunResult:
    """Aggregate of several runs of the same scenario (the paper uses 10)."""

    scenario_name: str
    source_labels: List[str]
    runs: List[RunResult]

    @property
    def n_repeats(self) -> int:
        return len(self.runs)

    def _check(self) -> None:
        if not self.runs:
            raise ValueError("no runs to aggregate")

    def mean_error_series(self, source_index: int) -> List[float]:
        """Per-step error for one source, averaged over repeats."""
        self._check()
        return mean_series([r.error_series(source_index) for r in self.runs])

    def mean_false_positive_series(self) -> List[float]:
        self._check()
        return mean_series([r.false_positive_series() for r in self.runs])

    def mean_false_negative_series(self) -> List[float]:
        self._check()
        return mean_series([r.false_negative_series() for r in self.runs])

    def all_mean_series(self) -> Dict[str, List[float]]:
        """Named series ready for :func:`repro.eval.reporting.format_series`."""
        out: Dict[str, List[float]] = {}
        for i, label in enumerate(self.source_labels):
            out[f"err[{label}]"] = self.mean_error_series(i)
        out["FP"] = self.mean_false_positive_series()
        out["FN"] = self.mean_false_negative_series()
        return out
