"""Scenario and run-result (de)serialization: JSON-shaped documents.

A real deployment's configuration -- sensor positions and calibrations,
suspected obstacle footprints, localizer tuning -- lives in files, not in
code.  This module round-trips a :class:`repro.sim.Scenario` through a
plain-JSON document so experiment configurations can be versioned,
shared, and edited by hand.

Delivery models are serialized by name with their parameters; custom
delivery classes fall back to in-order on load (with the original name
preserved in the document for the caller to resolve).

Run *results* round-trip too (:func:`run_result_to_dict` /
:func:`run_result_from_dict`): the experiment engine ships each worker's
:class:`~repro.sim.results.RunResult` back to the parent as one of these
documents, and benchmark harnesses persist them as machine-readable
artifacts.  Non-finite error entries (missed sources are ``inf``) are
encoded as ``None`` so the documents stay strict-JSON safe.
"""

from __future__ import annotations

import dataclasses
import hashlib
import io
import json
import math
from pathlib import Path
from typing import Any, Dict, Optional

import numpy as np

from repro.core.config import LocalizerConfig
from repro.ioutil import atomic_write_bytes
from repro.core.diagnostics import PopulationHealth
from repro.core.estimator import SourceEstimate
from repro.core.fusion import (
    AutoFusionRange,
    FixedFusionRange,
    FusionRangePolicy,
    InfiniteFusionRange,
)
from repro.core.particles import ParticleSet
from repro.eval.metrics import StepMetrics
from repro.faults.serialization import (
    fault_schedule_from_dict,
    fault_schedule_to_dict,
)
from repro.sim.results import RunResult, StepRecord
from repro.geometry.polygon import Polygon
from repro.network.link import (
    ExponentialLatencyLink,
    LinkModel,
    LossyLink,
    PerfectLink,
    UniformLatencyLink,
)
from repro.network.topology import (
    CommunicationGraph,
    MultiHopLink,
    TopologyAwareDelivery,
)
from repro.network.transport import (
    DeliveryModel,
    InOrderDelivery,
    OutOfOrderDelivery,
    ShuffledDelivery,
)
from repro.physics.obstacle import Obstacle
from repro.physics.source import RadiationSource
from repro.sensors.sensor import Sensor
from repro.sim.scenario import Scenario

#: Document format version; bump on incompatible changes.
FORMAT_VERSION = 1

#: Checkpoint document magic + version (independent of scenario documents).
CHECKPOINT_FORMAT = "repro-checkpoint"
CHECKPOINT_VERSION = 1


class CheckpointError(RuntimeError):
    """A checkpoint document is missing, corrupted, or unsupported."""


def _link_to_dict(link: LinkModel) -> Dict[str, Any]:
    if isinstance(link, PerfectLink):
        return {"type": "perfect"}
    if isinstance(link, UniformLatencyLink):
        return {"type": "uniform", "low": link.low, "high": link.high}
    if isinstance(link, ExponentialLatencyLink):
        return {"type": "exponential", "mean": link.mean}
    if isinstance(link, LossyLink):
        return {
            "type": "lossy",
            "loss": link.loss_probability,
            "inner": _link_to_dict(link.inner),
        }
    return {"type": "custom", "repr": repr(link)}


def _link_from_dict(data: Dict[str, Any]) -> LinkModel:
    kind = data.get("type", "perfect")
    if kind == "perfect":
        return PerfectLink()
    if kind == "uniform":
        return UniformLatencyLink(data["low"], data["high"])
    if kind == "exponential":
        return ExponentialLatencyLink(data["mean"])
    if kind == "lossy":
        return LossyLink(_link_from_dict(data["inner"]), data["loss"])
    return PerfectLink()


def _delivery_to_dict(delivery: DeliveryModel) -> Dict[str, Any]:
    if isinstance(delivery, InOrderDelivery):
        return {"type": "in-order"}
    if isinstance(delivery, ShuffledDelivery):
        return {"type": "shuffled"}
    if isinstance(delivery, TopologyAwareDelivery):
        link = delivery.link
        topology = link.topology
        return {
            "type": "topology",
            "radio_range": topology.radio_range,
            "base_station": list(topology.base_station),
            "per_hop": link.per_hop,
            "contention_mean": link.contention_mean,
            "sensors": [
                {"id": node, "x": pos[0], "y": pos[1]}
                for node, pos in topology.graph.nodes(data="pos")
                if node != CommunicationGraph.BASE
            ],
        }
    if isinstance(delivery, OutOfOrderDelivery):
        return {"type": "out-of-order", "link": _link_to_dict(delivery.link)}
    return {"type": "custom", "repr": repr(delivery)}


def _delivery_from_dict(data: Dict[str, Any]) -> DeliveryModel:
    kind = data.get("type", "in-order")
    if kind == "in-order":
        return InOrderDelivery()
    if kind == "shuffled":
        return ShuffledDelivery()
    if kind == "topology":
        sensors = [
            Sensor(sensor_id=s["id"], x=s["x"], y=s["y"])
            for s in data["sensors"]
        ]
        topology = CommunicationGraph(
            sensors,
            base_station=tuple(data["base_station"]),
            radio_range=data["radio_range"],
        )
        return TopologyAwareDelivery(
            MultiHopLink(
                topology,
                per_hop=data["per_hop"],
                contention_mean=data["contention_mean"],
            )
        )
    if kind == "out-of-order":
        return OutOfOrderDelivery(_link_from_dict(data.get("link", {})))
    return InOrderDelivery()


def fusion_policy_to_dict(policy: Optional[FusionRangePolicy]) -> Dict[str, Any]:
    """Codec for the fusion policies a checkpoint can carry.

    Unlike the scenario codecs, an unknown policy is an error: silently
    swapping a policy on restore would change every subsequent fusion
    selection and break resume parity.
    """
    if policy is None:
        return {"type": "none"}
    if isinstance(policy, FixedFusionRange):
        return {"type": "fixed", "d": policy.d}
    if isinstance(policy, InfiniteFusionRange):
        return {"type": "infinite"}
    if isinstance(policy, AutoFusionRange):
        return {
            "type": "auto",
            "sensor_positions": [list(p) for p in policy.sensor_positions],
            "k": policy.k,
            "slack": policy.slack,
        }
    raise CheckpointError(
        f"cannot checkpoint fusion policy {type(policy).__name__}; "
        "add a codec in repro.sim.serialization"
    )


def fusion_policy_from_dict(data: Dict[str, Any]) -> Optional[FusionRangePolicy]:
    """Inverse of :func:`fusion_policy_to_dict`."""
    kind = data.get("type", "none")
    if kind == "none":
        return None
    if kind == "fixed":
        return FixedFusionRange(data["d"])
    if kind == "infinite":
        return InfiniteFusionRange()
    if kind == "auto":
        return AutoFusionRange(
            [tuple(p) for p in data["sensor_positions"]],
            k=data["k"],
            slack=data["slack"],
        )
    raise CheckpointError(f"unknown fusion policy type {kind!r} in checkpoint")


def scenario_to_dict(scenario: Scenario) -> Dict[str, Any]:
    """A JSON-serializable document describing the scenario."""
    doc = {
        "format_version": FORMAT_VERSION,
        "name": scenario.name,
        "area": list(scenario.area),
        "background_cpm": scenario.background_cpm,
        "n_time_steps": scenario.n_time_steps,
        "sources": [
            {"x": s.x, "y": s.y, "strength": s.strength, "label": s.label}
            for s in scenario.sources
        ],
        "sensors": [
            {
                "id": s.sensor_id,
                "x": s.x,
                "y": s.y,
                "efficiency": s.efficiency,
                "background_cpm": s.background_cpm,
                "failed": s.failed,
            }
            for s in scenario.sensors
        ],
        "obstacles": [
            {
                "label": o.label,
                "mu": o.mu,
                "vertices": [[v.x, v.y] for v in o.polygon.vertices],
            }
            for o in scenario.obstacles
        ],
        "localizer_config": dataclasses.asdict(scenario.localizer_config),
        "delivery": _delivery_to_dict(scenario.delivery),
    }
    # Only present when a schedule is attached: fault-free documents stay
    # byte-for-byte what they always were.
    faults = fault_schedule_to_dict(scenario.faults)
    if faults is not None:
        doc["faults"] = faults
    return doc


def scenario_from_dict(data: Dict[str, Any]) -> Scenario:
    """Rebuild a Scenario from :func:`scenario_to_dict` output."""
    version = data.get("format_version", 0)
    if version > FORMAT_VERSION:
        raise ValueError(
            f"scenario document version {version} is newer than supported "
            f"({FORMAT_VERSION})"
        )
    sources = [
        RadiationSource(s["x"], s["y"], s["strength"], label=s.get("label", ""))
        for s in data["sources"]
    ]
    sensors = [
        Sensor(
            sensor_id=s["id"],
            x=s["x"],
            y=s["y"],
            efficiency=s.get("efficiency", 1.0),
            background_cpm=s.get("background_cpm", 0.0),
            failed=s.get("failed", False),
        )
        for s in data["sensors"]
    ]
    obstacles = [
        Obstacle(
            Polygon([tuple(v) for v in o["vertices"]]),
            mu=o["mu"],
            label=o.get("label", ""),
        )
        for o in data.get("obstacles", [])
    ]
    config_data = data.get("localizer_config")
    config = None
    if config_data is not None:
        config_data = dict(config_data)
        area = config_data.get("area")
        if isinstance(area, list):
            config_data["area"] = tuple(area)
        config = LocalizerConfig(**config_data)
    return Scenario(
        name=data.get("name", "unnamed"),
        area=(float(data["area"][0]), float(data["area"][1])),
        sources=sources,
        sensors=sensors,
        obstacles=obstacles,
        background_cpm=data.get("background_cpm", 0.0),
        n_time_steps=data.get("n_time_steps", 30),
        localizer_config=config,
        delivery=_delivery_from_dict(data.get("delivery", {})),
        faults=fault_schedule_from_dict(data.get("faults")),
    )


def _estimate_to_dict(estimate: SourceEstimate) -> Dict[str, Any]:
    return {
        "x": estimate.x,
        "y": estimate.y,
        "strength": estimate.strength,
        "mass": estimate.mass,
        "mass_ratio": estimate.mass_ratio,
        "seed_count": estimate.seed_count,
    }


def _estimate_from_dict(data: Dict[str, Any]) -> SourceEstimate:
    return SourceEstimate(
        x=data["x"],
        y=data["y"],
        strength=data["strength"],
        mass=data["mass"],
        mass_ratio=data["mass_ratio"],
        seed_count=data["seed_count"],
    )


def _encode_error(value: float) -> Optional[float]:
    return float(value) if math.isfinite(value) else None


def _decode_error(value: Optional[float]) -> float:
    return float("inf") if value is None else float(value)


def step_record_to_dict(record: StepRecord) -> Dict[str, Any]:
    """A JSON-safe document for one :class:`StepRecord`."""
    metrics = record.metrics
    snapshot = None
    if record.snapshot is not None:
        snapshot = {
            "xs": record.snapshot.xs.tolist(),
            "ys": record.snapshot.ys.tolist(),
            "strengths": record.snapshot.strengths.tolist(),
            "weights": record.snapshot.weights.tolist(),
        }
    health = None
    if record.health is not None:
        health = dataclasses.asdict(record.health)
    return {
        "metrics": {
            "time_step": metrics.time_step,
            "errors": [_encode_error(e) for e in metrics.errors],
            "false_positives": metrics.false_positives,
            "false_negatives": metrics.false_negatives,
            "n_estimates": metrics.n_estimates,
        },
        "estimates": [_estimate_to_dict(e) for e in record.estimates],
        "mean_iteration_seconds": record.mean_iteration_seconds,
        "n_measurements": record.n_measurements,
        "snapshot": snapshot,
        "health": health,
        "converged": record.converged,
    }


def step_record_from_dict(data: Dict[str, Any]) -> StepRecord:
    """Rebuild a :class:`StepRecord` from :func:`step_record_to_dict` output."""
    metrics_data = data["metrics"]
    snapshot = None
    if data.get("snapshot") is not None:
        snap = data["snapshot"]
        snapshot = ParticleSet(
            np.asarray(snap["xs"], dtype=float),
            np.asarray(snap["ys"], dtype=float),
            np.asarray(snap["strengths"], dtype=float),
            np.asarray(snap["weights"], dtype=float),
        )
    health = None
    if data.get("health") is not None:
        health = PopulationHealth(**data["health"])
    return StepRecord(
        metrics=StepMetrics(
            time_step=metrics_data["time_step"],
            errors=tuple(_decode_error(e) for e in metrics_data["errors"]),
            false_positives=metrics_data["false_positives"],
            false_negatives=metrics_data["false_negatives"],
            n_estimates=metrics_data["n_estimates"],
        ),
        estimates=[_estimate_from_dict(e) for e in data["estimates"]],
        mean_iteration_seconds=data["mean_iteration_seconds"],
        n_measurements=data["n_measurements"],
        snapshot=snapshot,
        health=health,
        converged=data.get("converged", False),
    )


def run_result_to_dict(result: RunResult) -> Dict[str, Any]:
    """A JSON-safe document for one complete :class:`RunResult`.

    The transport format between experiment-engine workers and the parent
    process, and the payload benchmarks persist for machine consumption.
    """
    return {
        "format_version": FORMAT_VERSION,
        "scenario_name": result.scenario_name,
        "source_labels": list(result.source_labels),
        "steps": [step_record_to_dict(s) for s in result.steps],
    }


def run_result_from_dict(data: Dict[str, Any]) -> RunResult:
    """Rebuild a :class:`RunResult` from :func:`run_result_to_dict` output."""
    version = data.get("format_version", 0)
    if version > FORMAT_VERSION:
        raise ValueError(
            f"run-result document version {version} is newer than supported "
            f"({FORMAT_VERSION})"
        )
    return RunResult(
        scenario_name=data["scenario_name"],
        source_labels=list(data["source_labels"]),
        steps=[step_record_from_dict(s) for s in data["steps"]],
    )


def _atomic_write_bytes(path: Path, payload: bytes) -> None:
    """Write via temp file + rename + directory fsync (crash-durable)."""
    atomic_write_bytes(path, payload, durable=True)


def save_checkpoint(state: Dict[str, Any], path: str | Path) -> int:
    """Persist a session state document as JSON plus an ``.npz`` sidecar.

    ``state`` is the output of
    :meth:`repro.sim.session.LocalizerSession.export_state`: a JSON-safe
    tree plus a flat ``state["arrays"]`` dict of ndarrays.  Arrays go to a
    binary sidecar (``<path>.npz``, bit-exact) referenced from the JSON
    document together with its SHA-256, so a truncated or tampered sidecar
    is detected at load time.  Both files are written atomically.

    Returns the total number of bytes written (JSON + sidecar), which the
    session feeds into the ``checkpoint.bytes`` metric.
    """
    path = Path(path)
    state = dict(state)
    arrays = state.pop("arrays", {})
    buffer = io.BytesIO()
    np.savez(buffer, **{key: np.asarray(value) for key, value in arrays.items()})
    blob = buffer.getvalue()
    arrays_name = path.name + ".npz"
    document = {
        "format": CHECKPOINT_FORMAT,
        "format_version": CHECKPOINT_VERSION,
        "arrays_file": arrays_name,
        "arrays_sha256": hashlib.sha256(blob).hexdigest(),
        "state": state,
    }
    payload = json.dumps(document).encode("utf-8")
    path.parent.mkdir(parents=True, exist_ok=True)
    _atomic_write_bytes(path.parent / arrays_name, blob)
    _atomic_write_bytes(path, payload)
    return len(payload) + len(blob)


def load_checkpoint(path: str | Path) -> Dict[str, Any]:
    """Load a checkpoint written by :func:`save_checkpoint`.

    Raises :class:`CheckpointError` on every failure mode -- missing or
    unparsable JSON, wrong magic, unsupported version, missing sidecar,
    or a sidecar whose SHA-256 does not match the document.
    """
    path = Path(path)
    try:
        document = json.loads(path.read_text())
    except OSError as exc:
        raise CheckpointError(f"cannot read checkpoint {path}: {exc}") from exc
    except json.JSONDecodeError as exc:
        raise CheckpointError(
            f"checkpoint {path} is not valid JSON: {exc}"
        ) from exc
    if not isinstance(document, dict) or document.get("format") != CHECKPOINT_FORMAT:
        raise CheckpointError(f"{path} is not a {CHECKPOINT_FORMAT} document")
    version = document.get("format_version")
    if version != CHECKPOINT_VERSION:
        raise CheckpointError(
            f"checkpoint {path} has format version {version!r}; this build "
            f"supports {CHECKPOINT_VERSION}"
        )
    try:
        arrays_file = document["arrays_file"]
        expected_sha = document["arrays_sha256"]
        state = document["state"]
    except KeyError as exc:
        raise CheckpointError(
            f"checkpoint {path} is missing required field {exc}"
        ) from exc
    sidecar = path.parent / arrays_file
    try:
        blob = sidecar.read_bytes()
    except OSError as exc:
        raise CheckpointError(
            f"checkpoint arrays sidecar {sidecar} is missing: {exc}"
        ) from exc
    if hashlib.sha256(blob).hexdigest() != expected_sha:
        raise CheckpointError(
            f"checkpoint arrays sidecar {sidecar} is corrupted "
            "(SHA-256 mismatch)"
        )
    # The SHA-256 gate catches truncation/tampering; this catches a
    # sidecar that was never a valid npz in the first place (the document
    # hashes whatever bytes it was written with).
    try:
        with np.load(io.BytesIO(blob)) as npz:
            arrays = {key: npz[key] for key in npz.files}
    except Exception as exc:
        raise CheckpointError(
            f"checkpoint arrays sidecar {sidecar} is not a readable npz "
            f"archive: {exc}"
        ) from exc
    state["arrays"] = arrays
    return state


def save_scenario(scenario: Scenario, path: str | Path) -> None:
    """Write the scenario to a JSON file."""
    Path(path).write_text(json.dumps(scenario_to_dict(scenario), indent=2))


def load_scenario(path: str | Path) -> Scenario:
    """Read a scenario from a JSON file."""
    return scenario_from_dict(json.loads(Path(path).read_text()))
