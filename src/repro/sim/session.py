"""Incrementally-driven localizer sessions with checkpoint/restore.

A :class:`LocalizerSession` is the stateful heart of a simulation run: it
owns the ground-truth network, the transport stream, the localizer and the
convergence monitor, and advances **one time step at a time**.  Where the
legacy :class:`~repro.sim.runner.SimulationRunner` drove a pre-wired
generator pipeline to completion, a session pulls measurements on demand
(:meth:`step`), which makes three things possible:

* **interleaving** -- callers can inspect estimates, inject faults, or
  mutate the world between steps;
* **checkpointing** -- :meth:`export_state` captures *complete* run state
  (particle arrays, weights, revision counters, RNG bit-generator states,
  in-flight transport messages, fusion policy, monitor history, step
  records) into a document that :func:`~repro.sim.serialization.save_checkpoint`
  persists as JSON + ``.npz``;
* **resume parity** -- a run checkpointed at step ``t`` and restored (even
  in a fresh process) emits **bitwise-identical** remaining
  :class:`~repro.sim.results.StepRecord` entries to the uninterrupted run.
  Nothing is reseeded on restore; every generator resumes mid-stream.

The parity contract constrains the implementation in non-obvious ways:
the localizer's revision-keyed estimate cache is checkpointed (a restore
that dropped it would recompute estimates at a different point in the
filter RNG stream), the echo filter's EMA dict round-trips in insertion
order, and the transport event queue's tiebreak counter survives so
simultaneous arrivals keep their order.
"""

from __future__ import annotations

import logging
from pathlib import Path
from typing import List, Optional, Sequence

from repro.core.diagnostics import ConvergenceMonitor, population_health
from repro.core.fusion import FusionRangePolicy
from repro.core.localizer import MultiSourceLocalizer
from repro.eval.metrics import MATCH_RADIUS, evaluate_step
from repro.obs.flight import DEFAULT_CAPACITY, FlightRecorder
from repro.obs.ledger import Ledger, manifest_from_result
from repro.obs.metrics import NULL_REGISTRY, MetricsRegistry
from repro.obs.sinks import TeeSink
from repro.obs.timers import Stopwatch
from repro.obs.trace import NULL_TRACER, Tracer
from repro.sim.results import RunResult, StepRecord
from repro.sim.rng import export_rng_state, spawn_rngs
from repro.sim.scenario import Scenario
from repro.sim.serialization import (
    CheckpointError,
    fusion_policy_from_dict,
    fusion_policy_to_dict,
    load_checkpoint,
    save_checkpoint,
    scenario_from_dict,
    scenario_to_dict,
    step_record_from_dict,
    step_record_to_dict,
)
from repro.streams.recorder import Recorder
from repro.streams.source import (
    FileReplaySource,
    MeasurementSource,
    SimulatorSource,
)

logger = logging.getLogger(__name__)

# Retained name: external callers historically imported the RNG snapshot
# helper from here; it now lives in repro.sim.rng.
_rng_state = export_rng_state


class LocalizerSession:
    """One scenario run, advanced step-by-step and snapshotable at any step.

    Constructing a session performs the same work, in the same order, as
    the start of a legacy runner run: RNG fan-out
    (:func:`~repro.sim.rng.spawn_rngs`), network construction, localizer
    initialization (which consumes the filter RNG), and transport stream
    opening.  That ordering is part of the determinism contract -- do not
    reorder it.

    ``checkpoint_every``/``checkpoint_path`` arm automatic checkpointing:
    every ``checkpoint_every`` completed steps the full state is written
    to ``checkpoint_path`` (overwriting the previous snapshot).
    """

    def __init__(
        self,
        scenario: Scenario,
        seed: int = 0,
        fusion_policy: Optional[FusionRangePolicy] = None,
        snapshot_steps: Sequence[int] = (),
        match_radius: float = MATCH_RADIUS,
        tracer: Optional[Tracer] = None,
        metrics: Optional[MetricsRegistry] = None,
        record_health: bool = True,
        convergence_tolerance: float = 3.0,
        convergence_checks: int = 3,
        run_index: Optional[int] = None,
        checkpoint_every: int = 0,
        checkpoint_path: Optional[str | Path] = None,
        ledger: Optional[Ledger] = None,
        manifest_name: Optional[str] = None,
        flight_path: Optional[str | Path] = None,
        flight_capacity: int = DEFAULT_CAPACITY,
        flight_storm_fraction: float = 0.25,
        source: Optional[MeasurementSource] = None,
        record_path: Optional[str | Path] = None,
        record_stream_id: Optional[str] = None,
    ):
        if checkpoint_every < 0:
            raise ValueError(
                f"checkpoint_every must be >= 0, got {checkpoint_every}"
            )
        if checkpoint_every > 0 and checkpoint_path is None:
            raise ValueError("checkpoint_every > 0 requires a checkpoint_path")
        self.scenario = scenario
        self.seed = seed
        self.fusion_policy = fusion_policy
        self.snapshot_steps = set(snapshot_steps)
        self.match_radius = match_radius
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.metrics = metrics if metrics is not None else NULL_REGISTRY
        #: Run ledger (None = no manifest emission, the zero-cost default).
        self.ledger = ledger
        self.manifest_name = manifest_name
        # Flight recorder: a bounded ring of the last N trace events,
        # dumped to flight_path on unhandled exception, CheckpointError,
        # or quarantine storm.  Tees off the caller's sink (or becomes
        # the sole sink, which force-enables tracing for this session).
        self.flight_path = Path(flight_path) if flight_path is not None else None
        self.flight_storm_fraction = flight_storm_fraction
        self.flight: Optional[FlightRecorder] = None
        self._storm_dumped = False
        if self.flight_path is not None:
            self.flight = FlightRecorder(flight_capacity)
            if self.tracer.enabled:
                self.tracer = Tracer(TeeSink(self.tracer.sink, self.flight))
            else:
                self.tracer = Tracer(self.flight)
        self.record_health = record_health
        self.run_index = run_index
        self.checkpoint_every = checkpoint_every
        self.checkpoint_path = (
            Path(checkpoint_path) if checkpoint_path is not None else None
        )

        measurement_rng, transport_rng, filter_rng = spawn_rngs(seed, 3)
        self.measurement_rng = measurement_rng
        self.transport_rng = transport_rng
        # The ingestion seam: every raw batch comes from a
        # MeasurementSource.  The default wraps the in-process simulator
        # bitwise-identically (construction consumes no RNG draws, so the
        # RNG fan-out -> localizer-init ordering above is preserved);
        # replay sources feed the same downstream pipeline from a file or
        # socket.
        if source is None:
            source = SimulatorSource(scenario, measurement_rng)
        self.source = source
        available = source.n_time_steps
        if available is not None and available < scenario.n_time_steps:
            raise ValueError(
                f"source supplies {available} time steps but scenario "
                f"{scenario.name!r} needs {scenario.n_time_steps}"
            )
        self.recorder: Optional[Recorder] = None
        if record_path is not None:
            self.recorder = Recorder.for_scenario(
                record_path,
                scenario,
                seed,
                stream_id=record_stream_id,
            )
            source.recorder = self.recorder
        self.localizer = MultiSourceLocalizer(
            scenario.localizer_config,
            fusion_policy=fusion_policy,
            rng=filter_rng,
            tracer=self.tracer,
            metrics=self.metrics,
        )
        self.monitor = ConvergenceMonitor(
            position_tolerance=convergence_tolerance,
            stable_checks=convergence_checks,
        )
        self.stream = scenario.delivery.open_stream(transport_rng)
        # Fault injector (scenario.faults): applied by the source between
        # the raw read and stream.push (after the record tee, so stream
        # files hold pre-fault data).  Its RNG derives from
        # (schedule.seed, run seed) independently of the spawn_rngs
        # fan-out, so an absent/empty schedule leaves every session
        # stream untouched -- including replayed ones.
        self.injector = (
            scenario.faults.injector(
                seed, tracer=self.tracer, metrics=self.metrics
            )
            if scenario.faults
            else None
        )
        source.injector = self.injector

        self.step_index = 0
        self.records: List[StepRecord] = []
        self._total_seconds = 0.0
        self._started = False
        self._finished = False

    # --- lifecycle --------------------------------------------------------------

    @property
    def network(self):
        """The ground-truth :class:`SensorNetwork` (simulator sources only).

        Replay sources have no simulator behind them; this is ``None``
        for them.
        """
        return getattr(self.source, "network", None)

    @property
    def finished(self) -> bool:
        """True once the final step (and the straggler tail) is processed."""
        return self._finished

    def step(self) -> StepRecord:
        """Advance one time step; returns the step's record.

        The final call additionally drains the transport stream's
        straggler tail and folds it into the last record (matching the
        legacy runner's semantics), then emits ``run_end``.

        With a flight recorder armed (``flight_path``), any exception
        escaping the step -- including a :class:`CheckpointError` from the
        automatic snapshot -- dumps the last N trace events to the
        ``*.flight.json`` artifact before propagating, and a quarantine
        storm (more than ``flight_storm_fraction`` of sensors quarantined
        at once) dumps once without interrupting the run.
        """
        if self.flight is None:
            return self._step()
        try:
            record = self._step()
        except Exception as exc:
            reason = (
                "checkpoint_error"
                if isinstance(exc, CheckpointError)
                else "exception"
            )
            self.flight.dump(
                self.flight_path, reason, exception=exc,
                context=self._flight_context(),
            )
            raise
        self._check_quarantine_storm()
        return record

    def _step(self) -> StepRecord:
        if self._finished:
            raise RuntimeError(
                f"session for {self.scenario.name!r} already finished "
                f"({self.step_index} steps)"
            )
        self._ensure_started()
        scenario = self.scenario
        step = self.step_index
        generated = self.source.measure(step)
        batch = self.stream.push(generated)
        elapsed = self._consume(batch)
        record = self._record(step, len(batch), elapsed / max(1, len(batch)))
        self.records.append(record)
        self._emit_step(step, len(batch), elapsed, record)
        self.step_index += 1
        if self.step_index >= scenario.n_time_steps:
            self._drain_tail()
            self._finish()
            return self.records[-1]
        if (
            self.checkpoint_every > 0
            and self.step_index % self.checkpoint_every == 0
        ):
            self.save_checkpoint(self.checkpoint_path)
        return record

    def run(self) -> RunResult:
        """Drive the session to completion and return the run result."""
        while not self._finished:
            self.step()
        return self.result()

    def result(self) -> RunResult:
        """The run result accumulated so far (complete once finished)."""
        return RunResult(
            scenario_name=self.scenario.name,
            source_labels=[
                s.label or f"Source {i + 1}"
                for i, s in enumerate(self.scenario.sources)
            ],
            steps=list(self.records),
        )

    def _ensure_started(self) -> None:
        if self._started:
            return
        self._started = True
        scenario = self.scenario
        logger.info(
            "run start: scenario=%s seed=%d sensors=%d steps=%d particles=%d",
            scenario.name, self.seed, len(scenario.sensors),
            scenario.n_time_steps, scenario.localizer_config.n_particles,
        )
        backend = self.localizer.backend.describe()
        self.tracer.emit(
            "run_start",
            scenario=scenario.name,
            seed=self.seed,
            run_index=self.run_index,
            n_sensors=len(scenario.sensors),
            n_steps=scenario.n_time_steps,
            n_particles=scenario.localizer_config.n_particles,
            backend=backend["name"],
            backend_dtype=backend["dtype"],
        )

    def _drain_tail(self) -> None:
        """Fold an out-of-order link's stragglers into the final record."""
        tail = self.stream.drain()
        if not tail:
            return
        self._consume(tail)
        if self.records:
            self.records[-1] = self._record(
                self.scenario.n_time_steps - 1, len(tail), 0.0
            )

    def _finish(self) -> None:
        self._finished = True
        scenario = self.scenario
        logger.info(
            "run end: scenario=%s seed=%d iterations=%d converged_at=%s "
            "total=%.3fs",
            scenario.name, self.seed, self.localizer.iteration,
            self.monitor.converged_at, self._total_seconds,
        )
        self.tracer.emit(
            "run_end",
            scenario=scenario.name,
            seed=self.seed,
            run_index=self.run_index,
            n_iterations=self.localizer.iteration,
            converged_at=self.monitor.converged_at,
            total_seconds=self._total_seconds,
        )
        if self.metrics.enabled:
            self.metrics.counter("runner.runs").inc()
            self.metrics.histogram("runner.run_seconds").observe(
                self._total_seconds
            )
        # Finalize the recording (and its digest) before the manifest is
        # built, so the ledger entry pins the completed stream's sha256.
        if self.recorder is not None:
            sha = self.recorder.close()
            self.tracer.emit(
                "stream_recorded",
                path=str(self.recorder.path),
                stream_id=self.recorder.stream_id,
                sha256=sha,
                steps=self.recorder.steps_written,
            )
        if self.ledger is not None:
            manifest = self.manifest()
            self.ledger.append(manifest)
            if self.metrics.enabled:
                self.metrics.counter("ledger.appends").inc()

    def manifest(self):
        """The run's ledger manifest (callable any time; final at finish).

        Replayed runs carry their stream identity (``stream_id`` +
        ``stream_sha256``) in the context, which is what lets the trend
        observatory separate live from replayed history and key golden
        streams; recorded runs pin the stream they produced as
        ``recorded_stream_id``/``recorded_stream_sha256``.
        """
        context = {
            **(
                {"run_index": self.run_index}
                if self.run_index is not None
                else {}
            ),
            "backend": self.localizer.backend.describe()["name"],
            "backend_dtype": self.localizer.backend.describe()["dtype"],
        }
        source_info = self.source.describe()
        if source_info.get("kind") != "simulator":
            context["source_kind"] = source_info["kind"]
            if "stream_id" in source_info:
                context["stream_id"] = source_info["stream_id"]
            if "stream_sha256" in source_info:
                context["stream_sha256"] = source_info["stream_sha256"]
        if self.recorder is not None:
            context["recorded_stream_id"] = self.recorder.stream_id
            if self.recorder.sha256 is not None:
                context["recorded_stream_sha256"] = self.recorder.sha256
        return manifest_from_result(
            self.result(),
            kind="session",
            name=self.manifest_name or self.scenario.name,
            seeds=[self.seed],
            scenario=self.scenario,
            wall_seconds=self._total_seconds,
            context=context,
        )

    def _flight_context(self) -> dict:
        return {
            "scenario": self.scenario.name,
            "seed": self.seed,
            "run_index": self.run_index,
            "step_index": self.step_index,
        }

    def _check_quarantine_storm(self) -> None:
        """Dump the flight ring (once) when quarantines cross the storm bar."""
        if self._storm_dumped or self.flight is None:
            return
        credibility = self.localizer.credibility
        if credibility is None:
            return
        n_sensors = max(1, len(self.scenario.sensors))
        threshold = max(2.0, self.flight_storm_fraction * n_sensors)
        quarantined = len(credibility.quarantined_ids())
        if quarantined >= threshold:
            self._storm_dumped = True
            self.flight.dump(
                self.flight_path,
                "quarantine_storm",
                context={
                    **self._flight_context(),
                    "quarantined": quarantined,
                    "n_sensors": n_sensors,
                },
            )

    # --- per-step internals -----------------------------------------------------

    def _consume(self, batch) -> float:
        watch = Stopwatch().start()
        # One fused weight update per delivery batch under an accelerated
        # backend; the default backend loops observe() inside, bitwise.
        self.localizer.observe_batch(list(batch))
        elapsed = watch.stop()
        self._total_seconds += elapsed
        return elapsed

    def _record(
        self, step: int, n_measurements: int, per_iteration_seconds: float
    ) -> StepRecord:
        estimates = self.localizer.estimates()
        metrics = evaluate_step(
            step,
            self.scenario.sources,
            estimates,
            match_radius=self.match_radius,
        )
        snapshot = (
            self.localizer.particle_snapshot()
            if step in self.snapshot_steps
            else None
        )
        health = population_health(self.localizer) if self.record_health else None
        converged = self.monitor.update(estimates)
        return StepRecord(
            metrics=metrics,
            estimates=estimates,
            mean_iteration_seconds=per_iteration_seconds,
            n_measurements=n_measurements,
            snapshot=snapshot,
            health=health,
            converged=converged,
        )

    def _emit_step(
        self, step: int, n_measurements: int, elapsed: float, record: StepRecord
    ) -> None:
        if not self.tracer.enabled:
            return
        health = record.health
        health_fields = (
            {
                "ess": health.effective_sample_size,
                "ess_fraction": health.ess_fraction,
                "spatial_spread": health.spatial_spread,
                "strength_median": health.strength_median,
                "strength_iqr": health.strength_iqr,
            }
            if health is not None
            else {}
        )
        self.tracer.emit(
            "step",
            step=step,
            n_measurements=n_measurements,
            elapsed_seconds=elapsed,
            n_estimates=len(record.estimates),
            false_positives=record.metrics.false_positives,
            false_negatives=record.metrics.false_negatives,
            converged=record.converged,
            **health_fields,
        )

    # --- checkpoint / restore ---------------------------------------------------

    def export_state(self) -> dict:
        """Complete session state as a checkpoint document.

        JSON-safe throughout except ``state["arrays"]``, a flat dict of
        ndarrays destined for the ``.npz`` sidecar (see
        :func:`~repro.sim.serialization.save_checkpoint`).
        """
        localizer_state = self.localizer.export_state()
        arrays = {
            f"localizer.{name}": array
            for name, array in localizer_state["arrays"].items()
        }
        state = {
            "session": {
                "scenario": scenario_to_dict(self.scenario),
                "seed": self.seed,
                "run_index": self.run_index,
                "fusion_policy": fusion_policy_to_dict(self.fusion_policy),
                "snapshot_steps": sorted(self.snapshot_steps),
                "match_radius": self.match_radius,
                "record_health": self.record_health,
                "convergence_tolerance": self.monitor.position_tolerance,
                "convergence_checks": self.monitor.stable_checks,
                "step_index": self.step_index,
                "finished": self._finished,
                "started": self._started,
                "total_seconds": self._total_seconds,
                "records": [step_record_to_dict(r) for r in self.records],
            },
            "transport": {
                "rng": _rng_state(self.transport_rng),
                "stream": self.stream.export_state(),
            },
            "localizer": localizer_state["meta"],
            "monitor": self.monitor.export_state(),
            "arrays": arrays,
        }
        # Source cursor.  Simulator cursors keep the pre-source layout
        # under "network" ({"sequence", "measurement_rng"}) so existing
        # checkpoints restore byte-for-byte; replay cursors go under
        # "source" (stream id + sha256 + next batch index).
        if isinstance(self.source, SimulatorSource):
            state["network"] = self.source.export_cursor()
        else:
            state["source"] = self.source.export_cursor()
        # Fault-injector state only when a schedule is attached, so
        # fault-free checkpoint documents are unchanged.
        if self.injector is not None:
            state["faults"] = self.injector.export_state()
        return state

    @classmethod
    def from_state(
        cls,
        state: dict,
        tracer: Optional[Tracer] = None,
        metrics: Optional[MetricsRegistry] = None,
        checkpoint_every: int = 0,
        checkpoint_path: Optional[str | Path] = None,
        ledger: Optional[Ledger] = None,
        flight_path: Optional[str | Path] = None,
        strict_backend: bool = False,
        stream_path: Optional[str | Path] = None,
    ) -> "LocalizerSession":
        """Rebuild a session from :meth:`export_state` output.

        The restored session continues exactly where the exported one
        stopped: no RNG is reseeded, the transport queue resumes with its
        in-flight messages, and ``run_start`` is *not* re-emitted.
        Observability attachments (tracer, metrics, ledger, flight
        recorder) are runtime concerns, not run state -- they are never
        checkpointed and must be re-supplied on restore.

        A replayed session's checkpoint carries its stream cursor
        (``state["source"]``): the stream file is reopened -- from
        ``stream_path`` if given, else the recorded location -- verified
        against the pinned SHA-256, and resumed at the next batch, so
        mid-stream resume is bitwise too.

        ``strict_backend=True`` turns the backend-mismatch warning (the
        checkpoint records which array backend wrote it; restoring under
        a different one forfeits bitwise resume parity) into a
        :class:`~repro.sim.serialization.CheckpointError`.
        """
        doc = state["session"]
        recorded_backend = (state.get("localizer") or {}).get("backend")
        if strict_backend and recorded_backend is not None:
            from repro.core.backend import get_backend

            active = get_backend(
                scenario_from_dict(doc["scenario"]).localizer_config.backend
            ).describe()
            if recorded_backend.get("name") != active["name"]:
                raise CheckpointError(
                    f"checkpoint was written by backend "
                    f"{recorded_backend.get('name')!r} "
                    f"({recorded_backend.get('dtype')}) but would restore "
                    f"under {active['name']!r} ({active['dtype']}); pass "
                    f"strict_backend=False to accept non-bitwise resume"
                )
        scenario = scenario_from_dict(doc["scenario"])
        session = cls(
            scenario,
            seed=doc["seed"],
            fusion_policy=fusion_policy_from_dict(doc["fusion_policy"]),
            snapshot_steps=doc["snapshot_steps"],
            match_radius=doc["match_radius"],
            tracer=tracer,
            metrics=metrics,
            record_health=doc["record_health"],
            convergence_tolerance=doc["convergence_tolerance"],
            convergence_checks=doc["convergence_checks"],
            run_index=doc["run_index"],
            checkpoint_every=checkpoint_every,
            checkpoint_path=checkpoint_path,
            ledger=ledger,
            flight_path=flight_path,
        )
        if "source" in state:
            source = FileReplaySource.from_cursor(
                state["source"], path=stream_path
            )
            source.injector = session.injector
            session.source = source
        else:
            session.source.load_cursor(state["network"])
        session.transport_rng.bit_generator.state = state["transport"]["rng"]
        session.stream.load_state(state["transport"]["stream"])
        faults_state = state.get("faults")
        if faults_state is not None and session.injector is not None:
            session.injector.load_state(faults_state)
        localizer_arrays = {
            name.split(".", 1)[1]: array
            for name, array in state["arrays"].items()
            if name.startswith("localizer.")
        }
        session.localizer = MultiSourceLocalizer.from_state(
            scenario.localizer_config,
            {"meta": state["localizer"], "arrays": localizer_arrays},
            fusion_policy=session.fusion_policy,
            tracer=session.tracer,
            metrics=session.metrics,
        )
        session.monitor = ConvergenceMonitor.from_state(state["monitor"])
        session.records = [step_record_from_dict(r) for r in doc["records"]]
        session.step_index = int(doc["step_index"])
        session._finished = bool(doc["finished"])
        session._started = bool(doc["started"])
        session._total_seconds = float(doc["total_seconds"])
        return session

    def save_checkpoint(self, path: str | Path) -> int:
        """Write the session state to ``path`` (plus an ``.npz`` sidecar).

        Emits a ``checkpoint`` trace event and bumps the
        ``checkpoint.writes`` / ``checkpoint.bytes`` counters.  Returns
        the number of bytes written.
        """
        watch = Stopwatch().start()
        nbytes = save_checkpoint(self.export_state(), path)
        seconds = watch.stop()
        self.tracer.emit(
            "checkpoint",
            step=self.step_index,
            path=str(path),
            bytes=nbytes,
            seconds=seconds,
        )
        if self.metrics.enabled:
            self.metrics.counter("checkpoint.writes").inc()
            self.metrics.counter("checkpoint.bytes").inc(nbytes)
        return nbytes

    @classmethod
    def resume_from_checkpoint(
        cls,
        path: str | Path,
        tracer: Optional[Tracer] = None,
        metrics: Optional[MetricsRegistry] = None,
        checkpoint_every: int = 0,
        checkpoint_path: Optional[str | Path] = None,
        ledger: Optional[Ledger] = None,
        flight_path: Optional[str | Path] = None,
        strict_backend: bool = False,
        backend_override: Optional[str] = None,
        stream_path: Optional[str | Path] = None,
    ) -> "LocalizerSession":
        """Load a checkpoint file and rebuild the session it captured.

        ``checkpoint_path`` defaults to the file being resumed, so a
        session restored with ``checkpoint_every`` set keeps overwriting
        the same snapshot as it advances.  ``backend_override`` rewrites
        the checkpointed config's array backend before the session
        rebuilds (the CLI ``--backend`` flag); the recorded-backend
        mismatch check runs against the rewritten config, so
        ``strict_backend`` still catches the change.
        """
        if checkpoint_every > 0 and checkpoint_path is None:
            checkpoint_path = path
        state = load_checkpoint(path)
        if backend_override is not None:
            state["session"]["scenario"]["localizer_config"][
                "backend"
            ] = backend_override
        session = cls.from_state(
            state,
            tracer=tracer,
            metrics=metrics,
            checkpoint_every=checkpoint_every,
            checkpoint_path=checkpoint_path,
            ledger=ledger,
            flight_path=flight_path,
            strict_backend=strict_backend,
            stream_path=stream_path,
        )
        session.tracer.emit("restore", step=session.step_index, path=str(path))
        if session.metrics.enabled:
            session.metrics.counter("checkpoint.restores").inc()
        return session
