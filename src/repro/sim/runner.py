"""The time-stepped simulation driver.

Wires together ground truth (RadiationField + SensorNetwork), transport
(DeliveryModel) and the localizer, and records per-step metrics:

* each *time step*, every live sensor produces one Poisson reading;
* the delivery model decides the arrival order (and losses);
* the localizer consumes one measurement per iteration;
* at the end of each step, mean-shift estimates are extracted and scored
  against the true sources, population health is snapshotted, and the
  convergence monitor is updated.

Since the session refactor all of that behaviour lives in
:class:`~repro.sim.session.LocalizerSession`; ``SimulationRunner`` is the
thin batch-oriented driver kept for API stability -- it builds a session
and drives it to completion.  Code that wants to advance step-by-step,
interleave with the run, or checkpoint/resume should use the session
directly.

Observability: pass a :class:`~repro.obs.trace.Tracer` to record
``run_start`` / ``step`` / ``run_end`` events (plus the localizer's own
``iteration`` / ``extract`` events and the session's ``checkpoint`` /
``restore`` events) and a :class:`~repro.obs.metrics.MetricsRegistry` to
aggregate counters and histograms.  Both default to their null
implementations, which keep the run cost identical to an uninstrumented
one.
"""

from __future__ import annotations

from pathlib import Path
from typing import Optional, Sequence

from repro.core.fusion import FusionRangePolicy
from repro.eval.metrics import MATCH_RADIUS
from repro.obs.ledger import Ledger, manifest_from_result
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import Tracer
from repro.sim.results import RepeatedRunResult, RunResult
from repro.sim.rng import derive_run_seed
from repro.sim.scenario import Scenario
from repro.sim.session import LocalizerSession


class SimulationRunner:
    """Runs one scenario once, from a single master seed.

    ``checkpoint_every``/``checkpoint_path`` pass through to the
    underlying session: every N completed steps the full run state is
    snapshotted to ``checkpoint_path`` for later
    :meth:`LocalizerSession.resume_from_checkpoint`.
    """

    def __init__(
        self,
        scenario: Scenario,
        seed: int = 0,
        fusion_policy: Optional[FusionRangePolicy] = None,
        snapshot_steps: Sequence[int] = (),
        match_radius: float = MATCH_RADIUS,
        tracer: Optional[Tracer] = None,
        metrics: Optional[MetricsRegistry] = None,
        record_health: bool = True,
        convergence_tolerance: float = 3.0,
        convergence_checks: int = 3,
        run_index: Optional[int] = None,
        checkpoint_every: int = 0,
        checkpoint_path: Optional[str | Path] = None,
        ledger: Optional[Ledger] = None,
        manifest_name: Optional[str] = None,
        flight_path: Optional[str | Path] = None,
        source=None,
        record_path: Optional[str | Path] = None,
        record_stream_id: Optional[str] = None,
    ):
        self.scenario = scenario
        self.seed = seed
        self.fusion_policy = fusion_policy
        self.snapshot_steps = set(snapshot_steps)
        self.match_radius = match_radius
        self.tracer = tracer
        self.metrics = metrics
        self.record_health = record_health
        self.convergence_tolerance = convergence_tolerance
        self.convergence_checks = convergence_checks
        #: Repeat index within a repeated/swept experiment (None for a
        #: standalone run).  Tagged onto run_start/run_end events so merged
        #: traces from several repeats -- serial or parallel -- stay
        #: attributable to their run.
        self.run_index = run_index
        self.checkpoint_every = checkpoint_every
        self.checkpoint_path = checkpoint_path
        #: Optional run ledger -- when set, the finished session appends a
        #: :class:`~repro.obs.ledger.RunManifest` to it (see
        #: docs/OBSERVABILITY.md).
        self.ledger = ledger
        self.manifest_name = manifest_name
        self.flight_path = flight_path
        #: Measurement source override (default: the in-process simulator)
        #: and optional stream recording -- see repro.streams.
        self.source = source
        self.record_path = record_path
        self.record_stream_id = record_stream_id

    def session(self) -> LocalizerSession:
        """A fresh session configured like this runner."""
        return LocalizerSession(
            self.scenario,
            seed=self.seed,
            fusion_policy=self.fusion_policy,
            snapshot_steps=self.snapshot_steps,
            match_radius=self.match_radius,
            tracer=self.tracer,
            metrics=self.metrics,
            record_health=self.record_health,
            convergence_tolerance=self.convergence_tolerance,
            convergence_checks=self.convergence_checks,
            run_index=self.run_index,
            checkpoint_every=self.checkpoint_every,
            checkpoint_path=self.checkpoint_path,
            ledger=self.ledger,
            manifest_name=self.manifest_name,
            flight_path=self.flight_path,
            source=self.source,
            record_path=self.record_path,
            record_stream_id=self.record_stream_id,
        )

    def run(self) -> RunResult:
        return self.session().run()


def run_scenario(
    scenario: Scenario,
    seed: int = 0,
    fusion_policy: Optional[FusionRangePolicy] = None,
    snapshot_steps: Sequence[int] = (),
    tracer: Optional[Tracer] = None,
    metrics: Optional[MetricsRegistry] = None,
) -> RunResult:
    """Convenience wrapper: run a scenario once."""
    return SimulationRunner(
        scenario,
        seed=seed,
        fusion_policy=fusion_policy,
        snapshot_steps=snapshot_steps,
        tracer=tracer,
        metrics=metrics,
    ).run()


def run_repeated(
    scenario: Scenario,
    n_repeats: int = 10,
    base_seed: int = 0,
    fusion_policy: Optional[FusionRangePolicy] = None,
    tracer: Optional[Tracer] = None,
    metrics: Optional[MetricsRegistry] = None,
    workers: int = 0,
    timeout: Optional[float] = None,
    checkpoint_every: int = 0,
    checkpoint_dir: Optional[str | Path] = None,
    ledger: Optional[Ledger] = None,
    manifest_name: Optional[str] = None,
    flight_dir: Optional[str | Path] = None,
    record_path: Optional[str | Path] = None,
    record_stream_id: Optional[str] = None,
) -> RepeatedRunResult:
    """Run a scenario ``n_repeats`` times with distinct seeds and aggregate.

    This is the paper's protocol ("each simulation is repeated 10 times and
    the average results are reported").  A supplied tracer records all
    repeats into one stream (each bracketed by run_start / run_end events
    tagged with their ``run_index``).

    ``workers=N`` fans the repeats out to a process pool via the
    experiment engine (:mod:`repro.exp`); per-run seeds follow the frozen
    derivation contract in :mod:`repro.sim.rng`, so the parallel result is
    **bitwise-identical** to the serial one.  ``workers=0`` (the default)
    runs serially in-process; ``timeout`` bounds each parallel run (one
    retry, then in-process fallback).

    ``checkpoint_every``/``checkpoint_dir`` make the repeats resumable:
    each run checkpoints to its own file under ``checkpoint_dir``, and a
    retried (crashed / timed-out) run restores from its last checkpoint
    instead of starting over.

    ``ledger`` appends one manifest per finished run.  On the parallel
    path the appends happen parent-side after the results return, so a
    crashed worker never leaves a half-written ledger line.
    ``flight_dir`` (serial path only -- worker crashes already spool
    their trace events to the parent) arms a per-run flight recorder at
    ``flight_dir/run-<r>.flight.json``.

    ``record_path`` tees the run's raw measurement batches to a
    ``repro-stream v1`` file (see :mod:`repro.streams`); recording is
    only meaningful for a single serial uncheckpointed run.
    """
    if n_repeats < 1:
        raise ValueError(f"n_repeats must be >= 1, got {n_repeats}")
    if record_path is not None and (
        n_repeats != 1 or (workers and workers > 0) or checkpoint_every > 0
    ):
        raise ValueError(
            "stream recording requires a single serial uncheckpointed run "
            "(n_repeats=1, workers=0, checkpoint_every=0)"
        )
    from repro.exp.engine import run_cells
    from repro.exp.spec import SweepSpec

    if (workers and workers > 0) or checkpoint_every > 0:
        spec = SweepSpec.single(
            scenario,
            n_repeats=n_repeats,
            base_seed=base_seed,
            fusion_policy=fusion_policy,
        )
        runs = run_cells(
            spec.cells(),
            workers=workers,
            timeout=timeout,
            tracer=tracer,
            metrics=metrics,
            checkpoint_every=checkpoint_every,
            checkpoint_dir=checkpoint_dir,
        )
        if ledger is not None:
            for r, result in enumerate(runs):
                ledger.append(
                    manifest_from_result(
                        result,
                        kind="session",
                        name=manifest_name or scenario.name,
                        seeds=[derive_run_seed(base_seed, r)],
                        scenario=scenario,
                        context={"run_index": r},
                    )
                )
    else:
        runs = []
        for r in range(n_repeats):
            flight_path = None
            if flight_dir is not None:
                flight_path = Path(flight_dir) / f"run-{r}.flight.json"
            runs.append(
                SimulationRunner(
                    scenario,
                    seed=derive_run_seed(base_seed, r),
                    fusion_policy=fusion_policy,
                    tracer=tracer,
                    metrics=metrics,
                    run_index=r,
                    ledger=ledger,
                    manifest_name=manifest_name,
                    flight_path=flight_path,
                    record_path=record_path,
                    record_stream_id=record_stream_id,
                ).run()
            )
    return RepeatedRunResult(
        scenario_name=scenario.name,
        source_labels=runs[0].source_labels,
        runs=runs,
    )
