"""The time-stepped simulation driver.

Wires together ground truth (RadiationField + SensorNetwork), transport
(DeliveryModel) and the localizer, and records per-step metrics:

* each *time step*, every live sensor produces one Poisson reading;
* the delivery model decides the arrival order (and losses);
* the localizer consumes one measurement per iteration;
* at the end of each step, mean-shift estimates are extracted and scored
  against the true sources.
"""

from __future__ import annotations

import time
from typing import Iterable, List, Optional, Sequence

from repro.core.fusion import FusionRangePolicy
from repro.core.localizer import MultiSourceLocalizer
from repro.eval.metrics import MATCH_RADIUS, evaluate_step
from repro.sensors.network import SensorNetwork
from repro.sim.results import RepeatedRunResult, RunResult, StepRecord
from repro.sim.rng import spawn_rngs
from repro.sim.scenario import Scenario


class SimulationRunner:
    """Runs one scenario once, from a single master seed."""

    def __init__(
        self,
        scenario: Scenario,
        seed: int = 0,
        fusion_policy: Optional[FusionRangePolicy] = None,
        snapshot_steps: Sequence[int] = (),
        match_radius: float = MATCH_RADIUS,
    ):
        self.scenario = scenario
        self.seed = seed
        self.fusion_policy = fusion_policy
        self.snapshot_steps = set(snapshot_steps)
        self.match_radius = match_radius

    def run(self) -> RunResult:
        scenario = self.scenario
        measurement_rng, transport_rng, filter_rng = spawn_rngs(self.seed, 3)

        network = SensorNetwork(
            scenario.sensors,
            scenario.field_with_obstacles(),
            measurement_rng,
        )
        localizer = MultiSourceLocalizer(
            scenario.localizer_config,
            fusion_policy=self.fusion_policy,
            rng=filter_rng,
        )

        result = RunResult(
            scenario_name=scenario.name,
            source_labels=[
                s.label or f"Source {i + 1}" for i, s in enumerate(scenario.sources)
            ],
        )

        batches = network.measure_stream(scenario.n_time_steps)
        arrival_batches = scenario.delivery.deliver(batches, transport_rng)

        for step, batch in enumerate(arrival_batches):
            if step >= scenario.n_time_steps:
                # Straggler tail from an out-of-order link: fold it into the
                # final recorded step so series lengths stay uniform.
                self._consume(localizer, batch)
                if result.steps:
                    result.steps[-1] = self._record(
                        scenario, localizer, scenario.n_time_steps - 1, len(batch), 0.0
                    )
                continue
            elapsed = self._consume(localizer, batch)
            per_iteration = elapsed / max(1, len(batch))
            result.steps.append(
                self._record(scenario, localizer, step, len(batch), per_iteration)
            )
        return result

    def _consume(self, localizer: MultiSourceLocalizer, batch: Iterable) -> float:
        start = time.perf_counter()
        for measurement in batch:
            localizer.observe(measurement)
        return time.perf_counter() - start

    def _record(
        self,
        scenario: Scenario,
        localizer: MultiSourceLocalizer,
        step: int,
        n_measurements: int,
        per_iteration_seconds: float,
    ) -> StepRecord:
        estimates = localizer.estimates()
        metrics = evaluate_step(
            step, scenario.sources, estimates, match_radius=self.match_radius
        )
        snapshot = (
            localizer.particle_snapshot() if step in self.snapshot_steps else None
        )
        return StepRecord(
            metrics=metrics,
            estimates=estimates,
            mean_iteration_seconds=per_iteration_seconds,
            n_measurements=n_measurements,
            snapshot=snapshot,
        )


def run_scenario(
    scenario: Scenario,
    seed: int = 0,
    fusion_policy: Optional[FusionRangePolicy] = None,
    snapshot_steps: Sequence[int] = (),
) -> RunResult:
    """Convenience wrapper: run a scenario once."""
    return SimulationRunner(
        scenario, seed=seed, fusion_policy=fusion_policy, snapshot_steps=snapshot_steps
    ).run()


def run_repeated(
    scenario: Scenario,
    n_repeats: int = 10,
    base_seed: int = 0,
    fusion_policy: Optional[FusionRangePolicy] = None,
) -> RepeatedRunResult:
    """Run a scenario ``n_repeats`` times with distinct seeds and aggregate.

    This is the paper's protocol ("each simulation is repeated 10 times and
    the average results are reported").
    """
    if n_repeats < 1:
        raise ValueError(f"n_repeats must be >= 1, got {n_repeats}")
    runs: List[RunResult] = []
    for r in range(n_repeats):
        runs.append(
            run_scenario(scenario, seed=base_seed + 1000 * r, fusion_policy=fusion_policy)
        )
    return RepeatedRunResult(
        scenario_name=scenario.name,
        source_labels=runs[0].source_labels,
        runs=runs,
    )
