"""The time-stepped simulation driver.

Wires together ground truth (RadiationField + SensorNetwork), transport
(DeliveryModel) and the localizer, and records per-step metrics:

* each *time step*, every live sensor produces one Poisson reading;
* the delivery model decides the arrival order (and losses);
* the localizer consumes one measurement per iteration;
* at the end of each step, mean-shift estimates are extracted and scored
  against the true sources, population health is snapshotted, and the
  convergence monitor is updated.

Observability: pass a :class:`~repro.obs.trace.Tracer` to record
``run_start`` / ``step`` / ``run_end`` events (plus the localizer's own
``iteration`` / ``extract`` events) and a
:class:`~repro.obs.metrics.MetricsRegistry` to aggregate counters and
histograms.  Both default to their null implementations, which keep the
run cost identical to an uninstrumented one.
"""

from __future__ import annotations

import logging
from typing import Iterable, List, Optional, Sequence

from repro.core.diagnostics import ConvergenceMonitor, population_health
from repro.core.fusion import FusionRangePolicy
from repro.core.localizer import MultiSourceLocalizer
from repro.eval.metrics import MATCH_RADIUS, evaluate_step
from repro.obs.metrics import NULL_REGISTRY, MetricsRegistry
from repro.obs.timers import Stopwatch
from repro.obs.trace import NULL_TRACER, Tracer
from repro.sensors.network import SensorNetwork
from repro.sim.results import RepeatedRunResult, RunResult, StepRecord
from repro.sim.rng import derive_run_seed, spawn_rngs
from repro.sim.scenario import Scenario

logger = logging.getLogger(__name__)


class SimulationRunner:
    """Runs one scenario once, from a single master seed."""

    def __init__(
        self,
        scenario: Scenario,
        seed: int = 0,
        fusion_policy: Optional[FusionRangePolicy] = None,
        snapshot_steps: Sequence[int] = (),
        match_radius: float = MATCH_RADIUS,
        tracer: Optional[Tracer] = None,
        metrics: Optional[MetricsRegistry] = None,
        record_health: bool = True,
        convergence_tolerance: float = 3.0,
        convergence_checks: int = 3,
        run_index: Optional[int] = None,
    ):
        self.scenario = scenario
        self.seed = seed
        self.fusion_policy = fusion_policy
        self.snapshot_steps = set(snapshot_steps)
        self.match_radius = match_radius
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.metrics = metrics if metrics is not None else NULL_REGISTRY
        self.record_health = record_health
        self.convergence_tolerance = convergence_tolerance
        self.convergence_checks = convergence_checks
        #: Repeat index within a repeated/swept experiment (None for a
        #: standalone run).  Tagged onto run_start/run_end events so merged
        #: traces from several repeats -- serial or parallel -- stay
        #: attributable to their run.
        self.run_index = run_index

    def run(self) -> RunResult:
        scenario = self.scenario
        measurement_rng, transport_rng, filter_rng = spawn_rngs(self.seed, 3)

        network = SensorNetwork(
            scenario.sensors,
            scenario.field_with_obstacles(),
            measurement_rng,
        )
        localizer = MultiSourceLocalizer(
            scenario.localizer_config,
            fusion_policy=self.fusion_policy,
            rng=filter_rng,
            tracer=self.tracer,
            metrics=self.metrics,
        )
        monitor = ConvergenceMonitor(
            position_tolerance=self.convergence_tolerance,
            stable_checks=self.convergence_checks,
        )
        logger.info(
            "run start: scenario=%s seed=%d sensors=%d steps=%d particles=%d",
            scenario.name, self.seed, len(scenario.sensors),
            scenario.n_time_steps, scenario.localizer_config.n_particles,
        )
        self.tracer.emit(
            "run_start",
            scenario=scenario.name,
            seed=self.seed,
            run_index=self.run_index,
            n_sensors=len(scenario.sensors),
            n_steps=scenario.n_time_steps,
            n_particles=scenario.localizer_config.n_particles,
        )

        result = RunResult(
            scenario_name=scenario.name,
            source_labels=[
                s.label or f"Source {i + 1}" for i, s in enumerate(scenario.sources)
            ],
        )

        batches = network.measure_stream(scenario.n_time_steps)
        arrival_batches = scenario.delivery.deliver(batches, transport_rng)

        run_watch = Stopwatch().start()
        for step, batch in enumerate(arrival_batches):
            if step >= scenario.n_time_steps:
                # Straggler tail from an out-of-order link: fold it into the
                # final recorded step so series lengths stay uniform.
                self._consume(localizer, batch)
                if result.steps:
                    result.steps[-1] = self._record(
                        scenario, localizer, monitor,
                        scenario.n_time_steps - 1, len(batch), 0.0,
                    )
                continue
            elapsed = self._consume(localizer, batch)
            per_iteration = elapsed / max(1, len(batch))
            record = self._record(
                scenario, localizer, monitor, step, len(batch), per_iteration
            )
            result.steps.append(record)
            self._emit_step(step, len(batch), elapsed, record)
        total_seconds = run_watch.stop()

        logger.info(
            "run end: scenario=%s seed=%d iterations=%d converged_at=%s "
            "total=%.3fs",
            scenario.name, self.seed, localizer.iteration,
            monitor.converged_at, total_seconds,
        )
        self.tracer.emit(
            "run_end",
            scenario=scenario.name,
            seed=self.seed,
            run_index=self.run_index,
            n_iterations=localizer.iteration,
            converged_at=monitor.converged_at,
            total_seconds=total_seconds,
        )
        if self.metrics.enabled:
            self.metrics.counter("runner.runs").inc()
            self.metrics.histogram("runner.run_seconds").observe(total_seconds)
        return result

    def _consume(self, localizer: MultiSourceLocalizer, batch: Iterable) -> float:
        watch = Stopwatch().start()
        for measurement in batch:
            localizer.observe(measurement)
        return watch.stop()

    def _record(
        self,
        scenario: Scenario,
        localizer: MultiSourceLocalizer,
        monitor: ConvergenceMonitor,
        step: int,
        n_measurements: int,
        per_iteration_seconds: float,
    ) -> StepRecord:
        estimates = localizer.estimates()
        metrics = evaluate_step(
            step, scenario.sources, estimates, match_radius=self.match_radius
        )
        snapshot = (
            localizer.particle_snapshot() if step in self.snapshot_steps else None
        )
        health = population_health(localizer) if self.record_health else None
        converged = monitor.update(estimates)
        return StepRecord(
            metrics=metrics,
            estimates=estimates,
            mean_iteration_seconds=per_iteration_seconds,
            n_measurements=n_measurements,
            snapshot=snapshot,
            health=health,
            converged=converged,
        )

    def _emit_step(
        self, step: int, n_measurements: int, elapsed: float, record: StepRecord
    ) -> None:
        if not self.tracer.enabled:
            return
        health = record.health
        health_fields = (
            {
                "ess": health.effective_sample_size,
                "ess_fraction": health.ess_fraction,
                "spatial_spread": health.spatial_spread,
                "strength_median": health.strength_median,
                "strength_iqr": health.strength_iqr,
            }
            if health is not None
            else {}
        )
        self.tracer.emit(
            "step",
            step=step,
            n_measurements=n_measurements,
            elapsed_seconds=elapsed,
            n_estimates=len(record.estimates),
            false_positives=record.metrics.false_positives,
            false_negatives=record.metrics.false_negatives,
            converged=record.converged,
            **health_fields,
        )


def run_scenario(
    scenario: Scenario,
    seed: int = 0,
    fusion_policy: Optional[FusionRangePolicy] = None,
    snapshot_steps: Sequence[int] = (),
    tracer: Optional[Tracer] = None,
    metrics: Optional[MetricsRegistry] = None,
) -> RunResult:
    """Convenience wrapper: run a scenario once."""
    return SimulationRunner(
        scenario,
        seed=seed,
        fusion_policy=fusion_policy,
        snapshot_steps=snapshot_steps,
        tracer=tracer,
        metrics=metrics,
    ).run()


def run_repeated(
    scenario: Scenario,
    n_repeats: int = 10,
    base_seed: int = 0,
    fusion_policy: Optional[FusionRangePolicy] = None,
    tracer: Optional[Tracer] = None,
    metrics: Optional[MetricsRegistry] = None,
    workers: int = 0,
    timeout: Optional[float] = None,
) -> RepeatedRunResult:
    """Run a scenario ``n_repeats`` times with distinct seeds and aggregate.

    This is the paper's protocol ("each simulation is repeated 10 times and
    the average results are reported").  A supplied tracer records all
    repeats into one stream (each bracketed by run_start / run_end events
    tagged with their ``run_index``).

    ``workers=N`` fans the repeats out to a process pool via the
    experiment engine (:mod:`repro.exp`); per-run seeds follow the frozen
    derivation contract in :mod:`repro.sim.rng`, so the parallel result is
    **bitwise-identical** to the serial one.  ``workers=0`` (the default)
    runs serially in-process; ``timeout`` bounds each parallel run (one
    retry, then in-process fallback).
    """
    if n_repeats < 1:
        raise ValueError(f"n_repeats must be >= 1, got {n_repeats}")
    if workers and workers > 0:
        from repro.exp.engine import run_cells
        from repro.exp.spec import SweepSpec

        spec = SweepSpec.single(
            scenario,
            n_repeats=n_repeats,
            base_seed=base_seed,
            fusion_policy=fusion_policy,
        )
        runs = run_cells(
            spec.cells(),
            workers=workers,
            timeout=timeout,
            tracer=tracer,
            metrics=metrics,
        )
    else:
        runs = []
        for r in range(n_repeats):
            runs.append(
                SimulationRunner(
                    scenario,
                    seed=derive_run_seed(base_seed, r),
                    fusion_policy=fusion_policy,
                    tracer=tracer,
                    metrics=metrics,
                    run_index=r,
                ).run()
            )
    return RepeatedRunResult(
        scenario_name=scenario.name,
        source_labels=runs[0].source_labels,
        runs=runs,
    )
