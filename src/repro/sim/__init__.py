"""Simulation harness: scenarios, time-stepped runner, result containers.

The evaluation protocol of Section VI: sensors submit one measurement per
time step ``T`` (so one time step = N localizer iterations), runs last 30
time steps, and each configuration is repeated (the paper averages 10
repeats).  :class:`repro.sim.SimulationRunner` drives a ground-truth
:class:`repro.sensors.SensorNetwork` through a
:class:`repro.network.DeliveryModel` into a localizer and records per-step
metrics.
"""

from repro.sim.rng import derive_run_seed, spawn_rngs, seeded_rng
from repro.sim.scenario import Scenario
from repro.sim.scenarios import (
    scenario_a,
    scenario_a_three_sources,
    scenario_b,
    scenario_c,
    SCENARIO_A_SOURCES,
    SCENARIO_A3_SOURCES,
    SCENARIO_B_SOURCES,
)
from repro.sim.results import StepRecord, RunResult, RepeatedRunResult
from repro.sim.runner import SimulationRunner, run_scenario, run_repeated
from repro.sim.session import LocalizerSession
from repro.sim.serialization import (
    CheckpointError,
    load_checkpoint,
    load_scenario,
    run_result_from_dict,
    run_result_to_dict,
    save_checkpoint,
    save_scenario,
    scenario_from_dict,
    scenario_to_dict,
)

__all__ = [
    "derive_run_seed",
    "spawn_rngs",
    "seeded_rng",
    "Scenario",
    "scenario_a",
    "scenario_a_three_sources",
    "scenario_b",
    "scenario_c",
    "SCENARIO_A_SOURCES",
    "SCENARIO_A3_SOURCES",
    "SCENARIO_B_SOURCES",
    "StepRecord",
    "RunResult",
    "RepeatedRunResult",
    "SimulationRunner",
    "LocalizerSession",
    "run_scenario",
    "run_repeated",
    "CheckpointError",
    "save_checkpoint",
    "load_checkpoint",
    "load_scenario",
    "save_scenario",
    "scenario_from_dict",
    "scenario_to_dict",
    "run_result_from_dict",
    "run_result_to_dict",
]
