"""Deterministic random-number management.

Every stochastic component (measurement noise, delivery latency, particle
filter) gets its own child generator spawned from one seed, so a run is
exactly reproducible and components stay independent: adding a draw to the
transport layer does not perturb the particle filter's stream.

Seed-derivation contract
------------------------
Repeated experiments (the paper's "each simulation is repeated 10 times")
derive one seed per repeat with :func:`derive_run_seed`::

    run_seed = base_seed + RUN_SEED_STRIDE * run_index

and each run seed is expanded into per-component generators with
:func:`spawn_rngs`.  A run is therefore fully determined by
``(base_seed, run_index)`` -- never by which process, worker, or execution
order produced it -- which is what lets the experiment engine
(:mod:`repro.exp`) fan repeats out to a process pool and still produce
**bitwise-identical** per-run series to the serial loop.  This contract is
frozen: both the serial path in :func:`repro.sim.runner.run_repeated` and
the parallel engine call the same function.
"""

from __future__ import annotations

from typing import List

import numpy as np


#: Gap between consecutive run seeds.  Part of the frozen derivation
#: contract (see the module docstring); changing it would silently change
#: every recorded experiment.
RUN_SEED_STRIDE = 1000


def derive_run_seed(base_seed: int, run_index: int) -> int:
    """The master seed for repeat ``run_index`` of a repeated experiment.

    Deterministic and process-independent: serial loops and pool workers
    derive identical seeds for the same ``(base_seed, run_index)``, so
    per-run results are bitwise-identical regardless of execution mode.
    """
    if run_index < 0:
        raise ValueError(f"run_index must be >= 0, got {run_index}")
    return base_seed + RUN_SEED_STRIDE * run_index


def seeded_rng(seed: int) -> np.random.Generator:
    """A fresh PCG64 generator for the given seed."""
    return np.random.default_rng(seed)


def spawn_rngs(seed: int, n: int) -> List[np.random.Generator]:
    """``n`` statistically independent generators derived from one seed."""
    if n < 1:
        raise ValueError(f"need at least one generator, got {n}")
    seq = np.random.SeedSequence(seed)
    return [np.random.default_rng(child) for child in seq.spawn(n)]


def export_rng_state(generator: np.random.Generator) -> dict:
    """A generator's bit-state as a JSON-safe dict (plain ints/strs).

    The shared checkpoint helper: sessions, fault injectors and
    measurement sources all snapshot their generators through this so the
    state survives a JSON round-trip (numpy scalars become plain ints).
    Restore by assigning the dict back to ``generator.bit_generator.state``.
    """

    def _clean(value):
        if isinstance(value, dict):
            return {k: _clean(v) for k, v in value.items()}
        if isinstance(value, str):
            return value
        return int(value)

    return _clean(generator.bit_generator.state)
