"""Deterministic random-number management.

Every stochastic component (measurement noise, delivery latency, particle
filter) gets its own child generator spawned from one seed, so a run is
exactly reproducible and components stay independent: adding a draw to the
transport layer does not perturb the particle filter's stream.
"""

from __future__ import annotations

from typing import List

import numpy as np


def seeded_rng(seed: int) -> np.random.Generator:
    """A fresh PCG64 generator for the given seed."""
    return np.random.default_rng(seed)


def spawn_rngs(seed: int, n: int) -> List[np.random.Generator]:
    """``n`` statistically independent generators derived from one seed."""
    if n < 1:
        raise ValueError(f"need at least one generator, got {n}")
    seq = np.random.SeedSequence(seed)
    return [np.random.default_rng(child) for child in seq.spawn(n)]
