"""The paper's evaluation scenarios (Section VI, Fig. 8).

* **Scenario A** -- 100x100 area, 36 sensors on a 6x6 grid, two sources at
  (47, 71) and (81, 42) (or three at (87, 89), (37, 14), (55, 51)), an
  optional U-shaped obstacle in the middle (thickness 2, mu = 0.0693).
* **Scenario B** -- 260x260 area, 196 sensors on a 14x14 grid, nine sources
  of non-uniform strength (10-100 uCi), three obstacles of uneven
  thickness.
* **Scenario C** -- Scenario B's sources and obstacles, but 195 sensors
  from a Poisson point process and out-of-order measurement delivery.

The paper's Fig. 8 gives layouts only as pictures; the exact coordinates
frozen here follow its qualitative geometry (see DESIGN.md, Substitutions):
sources labelled S1-S9 spread across the area, one obstacle near the S2/S3
pair, one near S6/S7, one near S8/S9 placed so that it also partially
shadows S5 from its nearest sensors (the paper found exactly one source,
S5, hurt by obstacles).
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from repro.core.config import LocalizerConfig
from repro.core.fusion import AutoFusionRange
from repro.geometry.shapes import l_shape, rectangle, u_shape
from repro.network.link import UniformLatencyLink
from repro.network.transport import InOrderDelivery, OutOfOrderDelivery
from repro.physics.attenuation import MATERIALS
from repro.physics.obstacle import Obstacle
from repro.physics.source import RadiationSource
from repro.sensors.placement import grid_placement, poisson_placement
from repro.sim.scenario import Scenario

#: The paper's two-source positions for Scenario A.
SCENARIO_A_SOURCES: Tuple[Tuple[float, float], ...] = ((47.0, 71.0), (81.0, 42.0))
#: The paper's three-source positions.
SCENARIO_A3_SOURCES: Tuple[Tuple[float, float], ...] = (
    (87.0, 89.0),
    (37.0, 14.0),
    (55.0, 51.0),
)

#: Frozen Scenario B source layout: (x, y, strength uCi), labels S1-S9.
#: Strengths are non-uniform in 10-100 uCi per the paper.
SCENARIO_B_SOURCES: Tuple[Tuple[float, float, float], ...] = (
    (40.0, 230.0, 60.0),   # S1 -- open area, no obstacle nearby
    (62.0, 150.0, 30.0),   # S2 -- west of obstacle O1
    (122.0, 162.0, 80.0),  # S3 -- east of obstacle O1
    (232.0, 232.0, 50.0),  # S4 -- open corner
    (160.0, 92.0, 20.0),   # S5 -- shadowed by O3's arm (the hurt source)
    (50.0, 58.0, 100.0),   # S6 -- west of obstacle O2
    (112.0, 40.0, 40.0),   # S7 -- east of obstacle O2
    (210.0, 122.0, 70.0),  # S8 -- north of obstacle O3
    (232.0, 32.0, 25.0),   # S9 -- south of obstacle O3
)

#: mu of the evaluation obstacles: halves intensity every 10 length units.
PAPER_MU = MATERIALS["paper_obstacle"].mu

#: Sensor counting efficiency E_i used by all scenarios.  The paper never
#: states its simulated E_i, but its qualitative claims pin it down: a
#: 4 uCi source must look like 5 CPM background beyond one grid spacing
#: (Fig. 3e) while a 100 uCi source must remain visible ~50 units away
#: (the long-reach false-positive discussion).  E_i = 1e-4 -- a realistic
#: solid-angle x detector efficiency for a small counter -- satisfies both;
#: see DESIGN.md, Substitutions.
SENSOR_EFFICIENCY = 1e-4


def _scenario_a_obstacle() -> Obstacle:
    """The U-shaped obstacle of Fig. 8(a): centered, thickness 2."""
    return Obstacle(
        u_shape(35.0, 35.0, width=30.0, height=30.0, thickness=2.0, opening="up"),
        mu=PAPER_MU,
        label="U",
    )


def _scenario_b_obstacles() -> List[Obstacle]:
    """Three obstacles of uneven thickness for Scenarios B and C."""
    return [
        # O1: vertical wall separating S2 from S3 (thickness 6).
        Obstacle(rectangle(88.0, 128.0, 94.0, 192.0), mu=PAPER_MU, label="O1"),
        # O2: vertical wall separating S6 from S7 (thickness 4).
        Obstacle(rectangle(78.0, 18.0, 82.0, 78.0), mu=PAPER_MU, label="O2"),
        # O3: L-shape between S8 and S9 whose west arm shadows S5 from the
        # sensors south-east of it (thickness 5).
        Obstacle(
            l_shape(172.0, 62.0, width=66.0, height=44.0, thickness=5.0),
            mu=PAPER_MU,
            label="O3",
        ),
    ]


def scenario_a(
    strengths: Sequence[float] = (10.0, 10.0),
    background_cpm: float = 5.0,
    with_obstacle: bool = False,
    n_particles: int = 3000,
    n_time_steps: int = 30,
) -> Scenario:
    """Scenario A: two sources on the 100x100 / 6x6-grid testbed."""
    if len(strengths) != len(SCENARIO_A_SOURCES):
        raise ValueError(
            f"scenario A has {len(SCENARIO_A_SOURCES)} sources, "
            f"got {len(strengths)} strengths"
        )
    sources = [
        RadiationSource(x, y, s, label=f"Source {i + 1}")
        for i, ((x, y), s) in enumerate(zip(SCENARIO_A_SOURCES, strengths))
    ]
    sensors = grid_placement(
        6, 6, 100.0, 100.0, efficiency=SENSOR_EFFICIENCY,
        background_cpm=background_cpm, margin_fraction=0.0,
    )
    config = LocalizerConfig(
        n_particles=n_particles,
        area=(100.0, 100.0),
        fusion_range=24.0,
        assumed_background_cpm=background_cpm,
        assumed_efficiency=SENSOR_EFFICIENCY,
    )
    return Scenario(
        name="A" + ("+obstacle" if with_obstacle else ""),
        area=(100.0, 100.0),
        sources=sources,
        sensors=sensors,
        obstacles=[_scenario_a_obstacle()] if with_obstacle else [],
        background_cpm=background_cpm,
        n_time_steps=n_time_steps,
        localizer_config=config,
        delivery=InOrderDelivery(),
    )


def scenario_a_three_sources(
    strengths: Sequence[float] = (10.0, 10.0, 10.0),
    background_cpm: float = 5.0,
    n_particles: int = 3000,
    n_time_steps: int = 30,
) -> Scenario:
    """The three-source variant of Scenario A (Fig. 5)."""
    if len(strengths) != len(SCENARIO_A3_SOURCES):
        raise ValueError(
            f"three-source scenario needs {len(SCENARIO_A3_SOURCES)} strengths, "
            f"got {len(strengths)}"
        )
    sources = [
        RadiationSource(x, y, s, label=f"Source {i + 1}")
        for i, ((x, y), s) in enumerate(zip(SCENARIO_A3_SOURCES, strengths))
    ]
    sensors = grid_placement(
        6, 6, 100.0, 100.0, efficiency=SENSOR_EFFICIENCY,
        background_cpm=background_cpm, margin_fraction=0.0,
    )
    config = LocalizerConfig(
        n_particles=n_particles,
        area=(100.0, 100.0),
        fusion_range=24.0,
        assumed_background_cpm=background_cpm,
        assumed_efficiency=SENSOR_EFFICIENCY,
    )
    return Scenario(
        name="A3",
        area=(100.0, 100.0),
        sources=sources,
        sensors=sensors,
        background_cpm=background_cpm,
        n_time_steps=n_time_steps,
        localizer_config=config,
    )


def _scenario_b_config(n_particles: int, background_cpm: float) -> LocalizerConfig:
    return LocalizerConfig(
        n_particles=n_particles,
        area=(260.0, 260.0),
        fusion_range=24.0,
        assumed_background_cpm=background_cpm,
        assumed_efficiency=SENSOR_EFFICIENCY,
    )


def scenario_b(
    background_cpm: float = 5.0,
    with_obstacles: bool = True,
    n_particles: int = 15000,
    n_time_steps: int = 30,
) -> Scenario:
    """Scenario B: 196-sensor grid, nine sources, three obstacles."""
    sources = [
        RadiationSource(x, y, s, label=f"S{i + 1}")
        for i, (x, y, s) in enumerate(SCENARIO_B_SOURCES)
    ]
    sensors = grid_placement(
        14, 14, 260.0, 260.0, efficiency=SENSOR_EFFICIENCY,
        background_cpm=background_cpm, margin_fraction=0.0,
    )
    return Scenario(
        name="B" + ("" if with_obstacles else "-no-obstacles"),
        area=(260.0, 260.0),
        sources=sources,
        sensors=sensors,
        obstacles=_scenario_b_obstacles() if with_obstacles else [],
        background_cpm=background_cpm,
        n_time_steps=n_time_steps,
        localizer_config=_scenario_b_config(n_particles, background_cpm),
    )


def scenario_c(
    seed: int = 12345,
    background_cpm: float = 5.0,
    with_obstacles: bool = True,
    n_particles: int = 15000,
    n_time_steps: int = 30,
    latency_steps: float = 2.0,
) -> Scenario:
    """Scenario C: Poisson sensor placement plus out-of-order delivery.

    The 195 sensor locations are a deterministic function of ``seed``.
    Fusion ranges are per-sensor (distance to the 4th-nearest neighbour)
    because the deployment is irregular.
    """
    placement_rng = np.random.default_rng(seed)
    sensors = poisson_placement(
        195,
        260.0,
        260.0,
        placement_rng,
        efficiency=SENSOR_EFFICIENCY,
        background_cpm=background_cpm,
        exact_count=True,
    )
    sources = [
        RadiationSource(x, y, s, label=f"S{i + 1}")
        for i, (x, y, s) in enumerate(SCENARIO_B_SOURCES)
    ]
    scenario = Scenario(
        name="C" + ("" if with_obstacles else "-no-obstacles"),
        area=(260.0, 260.0),
        sources=sources,
        sensors=sensors,
        obstacles=_scenario_b_obstacles() if with_obstacles else [],
        background_cpm=background_cpm,
        n_time_steps=n_time_steps,
        localizer_config=_scenario_b_config(n_particles, background_cpm),
        delivery=OutOfOrderDelivery(UniformLatencyLink(0.0, latency_steps)),
    )
    return scenario


def scenario_c_fusion_policy(scenario: Scenario) -> AutoFusionRange:
    """The per-sensor fusion policy recommended for Poisson deployments.

    Distance to the 5th-nearest neighbour with 20 % slack: irregular
    placements leave coverage holes that a fixed range either misses
    (sources far from every sensor) or over-reaches (dense pockets where
    one disc spans several source clusters).
    """
    return AutoFusionRange(
        [(s.x, s.y) for s in scenario.sensors], k=5, slack=1.2
    )
