"""Scenario: the complete specification of one simulated deployment."""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.core.config import LocalizerConfig
from repro.faults.schedule import FaultSchedule
from repro.network.transport import DeliveryModel, InOrderDelivery
from repro.physics.intensity import RadiationField
from repro.physics.obstacle import Obstacle
from repro.physics.source import RadiationSource
from repro.sensors.sensor import Sensor


@dataclass
class Scenario:
    """Everything needed to run one experiment.

    A scenario owns the *ground truth* (sources, obstacles, sensors,
    background) and the localizer configuration used against it.  Factory
    functions in :mod:`repro.sim.scenarios` build the paper's Scenarios
    A, B and C.
    """

    name: str
    area: Tuple[float, float]
    sources: List[RadiationSource]
    sensors: List[Sensor]
    obstacles: List[Obstacle] = field(default_factory=list)
    background_cpm: float = 5.0
    n_time_steps: int = 30
    localizer_config: Optional[LocalizerConfig] = None
    delivery: DeliveryModel = field(default_factory=InOrderDelivery)
    #: Optional fault schedule injected between measurement generation and
    #: the transport stream (see repro.faults).  None or an empty schedule
    #: leaves the run bitwise-identical to a fault-free one.
    faults: Optional[FaultSchedule] = None

    def __post_init__(self) -> None:
        if not self.sources:
            raise ValueError(f"scenario {self.name!r} has no sources")
        if not self.sensors:
            raise ValueError(f"scenario {self.name!r} has no sensors")
        if self.n_time_steps < 1:
            raise ValueError(f"n_time_steps must be >= 1, got {self.n_time_steps}")
        if self.background_cpm < 0:
            raise ValueError(f"background must be non-negative, got {self.background_cpm}")
        w, h = self.area
        for src in self.sources:
            if not (0 <= src.x <= w and 0 <= src.y <= h):
                raise ValueError(f"source {src} outside the {w}x{h} area")
        if self.localizer_config is None:
            self.localizer_config = LocalizerConfig(
                area=self.area, assumed_background_cpm=self.background_cpm
            )

    def field_with_obstacles(self) -> RadiationField:
        """The ground-truth field including obstacles."""
        return RadiationField(self.sources, self.obstacles)

    def field_without_obstacles(self) -> RadiationField:
        """The same sources in an empty area (the obstacle-ablation twin)."""
        return RadiationField(self.sources, ())

    def without_obstacles(self) -> "Scenario":
        """A copy of this scenario with the obstacles removed."""
        return replace(self, name=f"{self.name}-no-obstacles", obstacles=[])

    def with_delivery(self, delivery: DeliveryModel) -> "Scenario":
        """A copy using a different transport model."""
        return replace(self, delivery=delivery)

    def with_sources(self, sources: Sequence[RadiationSource]) -> "Scenario":
        """A copy with a different source set."""
        return replace(self, sources=list(sources))

    def with_faults(self, faults: Optional[FaultSchedule]) -> "Scenario":
        """A copy with the given fault schedule attached (None clears it)."""
        return replace(self, faults=faults)

    def source_positions(self) -> np.ndarray:
        """(K, 2) array of true source positions."""
        return np.array([[s.x, s.y] for s in self.sources], dtype=float)

    def describe(self) -> str:
        """One-line summary for logs and benchmark headers."""
        return (
            f"{self.name}: {len(self.sources)} sources, {len(self.sensors)} sensors, "
            f"{len(self.obstacles)} obstacles, area {self.area[0]:.0f}x{self.area[1]:.0f}, "
            f"background {self.background_cpm} CPM, {self.n_time_steps} steps"
        )
